"""Integration tests: cached replication, sweep checkpoint/resume, CLI.

The contract under test: a warm cache serves bit-identical results, an
interrupted sweep leaves its completed cells behind, and re-running the
same command recomputes only the missing cells.
"""

from __future__ import annotations

import json

import pytest

from repro.adversaries.blocking import EpochTargetJammer, QBlockingJammer
from repro.cli import main as cli_main
from repro.experiments.registry import RunConfig
from repro.experiments.runner import replicate, sweep_epoch_targets
from repro.protocols.one_to_one import OneToOneBroadcast, OneToOneParams
from repro.store import run_result_to_dict

pytestmark = pytest.mark.cache

PARAMS = OneToOneParams.sim()
T1 = PARAMS.first_epoch + 2
T2 = PARAMS.first_epoch + 4


class FlakyJammer(EpochTargetJammer):
    """Test-only jammer with a runtime kill switch.

    ``BOOM_TARGETS`` is class state, invisible to ``vars(instance)`` and
    therefore to the fingerprint — exactly like an external fault
    (OOM kill, ctrl-C): the task's identity is unchanged, only its
    execution is interrupted.
    """

    BOOM_TARGETS: frozenset = frozenset()

    def plan_phase(self, ctx):
        if self.target_epoch in self.BOOM_TARGETS:
            raise RuntimeError("boom")
        return super().plan_phase(ctx)


def cache_config(tmp_path, **kw) -> RunConfig:
    return RunConfig(cache=True, cache_dir=tmp_path / "cache", **kw)


def snapshots(results) -> list[str]:
    return [json.dumps(run_result_to_dict(r), sort_keys=True) for r in results]


def run_replicate(config, n_reps=4):
    return replicate(
        lambda: OneToOneBroadcast(PARAMS),
        lambda: EpochTargetJammer(T1, q=1.0, target_listener=True),
        n_reps,
        seed=3,
        config=config,
    )


class TestReplicateCache:
    def test_warm_run_bit_identical(self, tmp_path):
        cold_cfg = cache_config(tmp_path)
        cold = run_replicate(cold_cfg)
        assert cold_cfg.stats.cache_hits == 0
        assert cold_cfg.stats.cache_misses == 4
        assert cold_cfg.stats.cache_bytes_written > 0

        warm_cfg = cache_config(tmp_path)
        warm = run_replicate(warm_cfg)
        assert warm_cfg.stats.cache_hits == 4
        assert warm_cfg.stats.cache_misses == 0
        assert warm_cfg.stats.cache_hit_rate == 1.0
        assert snapshots(warm) == snapshots(cold)

    def test_no_resume_recomputes_but_refreshes(self, tmp_path):
        cold = run_replicate(cache_config(tmp_path))
        fresh_cfg = cache_config(tmp_path, resume=False)
        fresh = run_replicate(fresh_cfg)
        assert fresh_cfg.stats.cache_hits == 0
        assert fresh_cfg.stats.cache_misses == 4
        assert snapshots(fresh) == snapshots(cold)
        # ... and the refreshed entries still serve.
        warm_cfg = cache_config(tmp_path)
        run_replicate(warm_cfg)
        assert warm_cfg.stats.cache_hits == 4

    def test_uncacheable_adversary_bypasses(self, tmp_path):
        config = cache_config(tmp_path)
        results = replicate(
            lambda: OneToOneBroadcast(PARAMS),
            # The lambda predicate has no canonical form: must run
            # uncached, not crash and not poison the cache.
            lambda: QBlockingJammer(1.0, predicate=lambda tags: True),
            2,
            seed=3,
            config=config,
        )
        assert len(results) == 2
        assert config.stats.cache_requests == 0

    def test_history_runs_bypass(self, tmp_path):
        config = cache_config(tmp_path, history=True)
        results = run_replicate(config, n_reps=2)
        assert all(r.phase_history for r in results)
        assert config.stats.cache_requests == 0

    def test_parallel_jobs_share_cache(self, tmp_path):
        cold = run_replicate(cache_config(tmp_path, jobs=2))
        warm_cfg = cache_config(tmp_path)  # serial warm read
        warm = run_replicate(warm_cfg)
        assert warm_cfg.stats.cache_hits == 4
        assert snapshots(warm) == snapshots(cold)


def run_sweep(config, targets):
    return sweep_epoch_targets(
        lambda: OneToOneBroadcast(PARAMS),
        lambda t: EpochTargetJammer(t, q=1.0, target_listener=True),
        targets,
        n_reps=3,
        seed=5,
        config=config,
    )


class TestSweepResume:
    def test_only_missing_cells_recomputed(self, tmp_path):
        run_sweep(cache_config(tmp_path), [T1])
        grown_cfg = cache_config(tmp_path)
        run_sweep(grown_cfg, [T1, T2])
        assert grown_cfg.stats.cache_hits == 3  # all of T1
        assert grown_cfg.stats.cache_misses == 3  # all of T2

    def test_aborted_sweep_resumes(self, tmp_path):
        def flaky_sweep(config):
            return sweep_epoch_targets(
                lambda: OneToOneBroadcast(PARAMS),
                lambda t: FlakyJammer(t, q=1.0, target_listener=True),
                [T1, T2],
                n_reps=3,
                seed=5,
                config=config,
            )

        FlakyJammer.BOOM_TARGETS = frozenset({T2})
        try:
            with pytest.raises(Exception, match="boom"):
                flaky_sweep(cache_config(tmp_path))
        finally:
            FlakyJammer.BOOM_TARGETS = frozenset()

        # The T1 cells completed before the abort and were checkpointed;
        # the re-run serves them warm and computes only T2.
        resumed_cfg = cache_config(tmp_path)
        points = flaky_sweep(resumed_cfg)
        assert len(points) == 2
        assert resumed_cfg.stats.cache_hits == 3
        assert resumed_cfg.stats.cache_misses == 3

    def test_sweep_results_bit_identical(self, tmp_path):
        cold = run_sweep(cache_config(tmp_path), [T1, T2])
        warm_cfg = cache_config(tmp_path)
        warm = run_sweep(warm_cfg, [T1, T2])
        assert warm_cfg.stats.cache_hit_rate == 1.0
        assert warm == cold  # SweepPoint dataclasses compare by value


class TestCliCache:
    def test_cold_vs_warm_byte_identical(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        argv = ["run", "E1", "--seed", "11", "--cache", "--cache-dir", cache_dir]
        assert cli_main(argv + ["--save", str(tmp_path / "cold")]) == 0
        cold_out = capsys.readouterr().out
        assert "(0%" in cold_out
        assert cli_main(argv + ["--save", str(tmp_path / "warm")]) == 0
        warm_out = capsys.readouterr().out
        assert "(100%" in warm_out
        cold = (tmp_path / "cold" / "E1.json").read_bytes()
        warm = (tmp_path / "warm" / "E1.json").read_bytes()
        assert cold == warm

    def test_cache_maintenance_commands(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert cli_main(
            ["run", "E1", "--cache", "--cache-dir", cache_dir]
        ) == 0
        capsys.readouterr()
        assert cli_main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        assert "unique keys" in capsys.readouterr().out
        assert cli_main(
            ["cache", "gc", "--cache-dir", cache_dir, "--max-bytes", "1K"]
        ) == 0
        assert "freed" in capsys.readouterr().out
        assert cli_main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "cleared" in capsys.readouterr().out
        assert cli_main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        assert "0 entries" in capsys.readouterr().out
