#!/usr/bin/env python3
"""Benchmark the channel kernels and record the results.

Runs the engine micro-benchmarks (``benchmarks/test_engine_micro.py``)
under pytest-benchmark and distils the full JSON output into a compact
``BENCH_engine.json`` at the repo root: per-benchmark mean/stddev timings
plus the headline sparse-vs-dense speedup ratios at L = 2**20.  The
compact file is committed so the O(events) claim in DESIGN.md is backed
by a recorded measurement.

Usage:

    PYTHONPATH=src python scripts/bench_engine.py [extra pytest args]

Extra args are forwarded to pytest, e.g. ``-k large_L`` to time only the
kernel comparison.
"""

from __future__ import annotations

import json
import platform
import subprocess
import sys
import tempfile
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
OUT = ROOT / "BENCH_engine.json"


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        raw_path = Path(tmp) / "bench.json"
        cmd = [
            sys.executable,
            "-m",
            "pytest",
            str(ROOT / "benchmarks" / "test_engine_micro.py"),
            "--benchmark-only",
            f"--benchmark-json={raw_path}",
            "-q",
            *sys.argv[1:],
        ]
        proc = subprocess.run(cmd, cwd=ROOT)
        if proc.returncode != 0:
            return proc.returncode
        raw = json.loads(raw_path.read_text())

    benchmarks = {}
    for b in raw["benchmarks"]:
        benchmarks[b["name"]] = {
            "mean_s": b["stats"]["mean"],
            "stddev_s": b["stats"]["stddev"],
            "rounds": b["stats"]["rounds"],
        }

    # Headline numbers: sparse resolver vs dense oracle on the huge
    # sparse-traffic phases (L = 2**20, ~64 events).
    speedups = {}
    for jam in ("suffix", "epoch"):
        sparse = benchmarks.get(f"test_resolve_phase_sparse_large_L[{jam}]")
        dense = benchmarks.get(f"test_resolve_phase_dense_oracle_large_L[{jam}]")
        if sparse and dense:
            speedups[jam] = {
                "sparse_mean_s": sparse["mean_s"],
                "dense_mean_s": dense["mean_s"],
                "speedup": dense["mean_s"] / sparse["mean_s"],
            }

    OUT.write_text(
        json.dumps(
            {
                "machine": {
                    "python": platform.python_version(),
                    "machine": platform.machine(),
                    "system": platform.system(),
                },
                "sparse_vs_dense_large_L": speedups,
                "benchmarks": benchmarks,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    print(f"wrote {OUT}")
    for jam, s in speedups.items():
        print(
            f"  L=2**20 {jam} jam: sparse {s['sparse_mean_s'] * 1e6:.1f} us, "
            f"dense {s['dense_mean_s'] * 1e6:.1f} us -> {s['speedup']:.0f}x"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
