"""Figure 2: 1-to-n BROADCAST (Theorem 3).

One sender must deliver an authenticated message ``m`` to all ``n``
nodes; neither ``n`` nor the adversary's budget ``T`` is known.  Epoch
``i`` consists of ``b * i**2`` *repetitions* of ``2**i`` slots.  Every
node ``u`` keeps a sending-rate variable ``S_u`` (reset to its initial
value at each epoch start) and a status in
``{uninformed, informed, helper}``:

* per slot, an informed/helper node sends ``m`` w.p. ``S_u / 2**i``; an
  uninformed node sends *noise* with the same probability (so that the
  channel occupancy reveals ``n`` relative to ``2**i``); every node
  listens w.p. ``S_u * d * i**3 / 2**i``;
* after a repetition, ``u`` counts its clear slots ``C_u``, takes the
  surplus over half its expected listening budget,
  ``C'_u = max(0, C_u - budget/2)``, and grows
  ``S_u <- S_u * 2**(C'_u / (budget * i))`` — hearing *silence* (which
  is free!) is what drives rates up;
* then exactly one of Figure 2's cases applies:

  1. ``S_u > 360 * 2**(i/2)`` — terminate (safety valve; keeps the
     expected cost finite for pathologically unlucky nodes);
  2. uninformed and heard ``m`` — become informed;
  3. informed and heard ``m`` more than ``d * i**3 / 200`` times —
     become a *helper* and estimate ``n_u = 2**i / S_u**2``;
  4. helper with ``S_u >= 360 * sqrt(2**i / n_u)`` — terminate (the
     analysis shows that when rates climb this high, everyone is a
     helper, w.h.p.).

Saturation handling (a deliberate, documented deviation needed at
laptop scale): when ``S_u * d * i**e > 2**i`` a node cannot listen in
more than every slot, so the listening probability is capped at 1 and
the *expected* listening budget ``E = min(S*d*i**e, L)`` replaces the
nominal budget in the baseline and the growth denominator.  With the
paper's constants the cap never binds (the analysis starts at epochs
where ``S*d*i**3 << 2**i``); with scaled-down constants this keeps the
update ``2**(max(0, q - 1/2) / i)`` intact instead of freezing ``S``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.channel.events import TxKind
from repro.constants import (
    FIG2_CLEAR_BASELINE_FRAC,
    FIG2_HELPER_DIV,
    FIG2_S_INIT,
    FIG2_TERM_GLOBAL,
    FIG2_TERM_HELPER,
)
from repro.channel.events import SlotStatus
from repro.engine.phase import (
    BatchPhaseObservation,
    BatchPhaseSpec,
    PhaseObservation,
    PhaseSpec,
)
from repro.errors import ConfigurationError, ProtocolError
from repro.protocols.base import NodeStatus, Protocol

__all__ = ["OneToNParams", "OneToNBroadcast"]


@dataclass(frozen=True)
class OneToNParams:
    """Tuning constants of Figure 2.

    The ``paper()`` preset uses the published values (``b >= 10``,
    ``d > 79.2``, cubic listening polynomial); they exist to close
    union bounds, not to shape the dynamics, and make single epochs
    cost millions of slots.  The ``sim()`` preset keeps every *relation*
    between thresholds (all scale with the same ``d * i**e`` budget)
    while shrinking the absolute sizes so that full executions complete
    in milliseconds-to-seconds; DESIGN.md §3 records the substitution.

    One calibration matters for the quality of the ``n_u`` estimate:
    Case 3 promotion fires when ``p_m * S_u`` crosses ``helper_frac``,
    and in the noise-floor regime (``2**i`` comparable to
    ``n * s_init``) the per-slot message probability ``p_m`` can peak
    at ``1/e`` while ``S_u`` is still stuck at ``s_init``.  Choosing
    ``helper_frac > s_init / e`` makes that regime unable to cross the
    threshold, so promotion happens where
    ``p_m ~ n * S**2 / 2**i`` and hence
    ``n_u = 2**i / S**2 ~ n / helper_frac`` — a faithful estimate.
    (The paper's constants do not enforce this inequality; its Lemma 10
    only bounds the estimate on one side, which is why Case 1 exists.)

    Attributes
    ----------
    b:
        Repetition multiplier: epoch ``i`` has ``ceil(b * i**2)``
        repetitions.
    d:
        Listening budget multiplier.
    listen_exp:
        The exponent ``e`` in the listening budget ``S * d * i**e``
        (3 in the paper).
    first_epoch:
        First epoch index (the paper's "sufficiently large constant").
    s_init:
        Epoch-start value of every ``S_u`` (16 in the paper).
    helper_frac:
        Case 3 threshold is ``helper_frac * d * i**e`` heard messages
        (1/200 in the paper).
    clear_baseline_frac:
        The 1/2 in ``C'_u = max(0, C_u - frac * budget)``.
    c_term_global / c_term_helper:
        The two 360s (Cases 1 and 4).
    max_epoch:
        Safety cap; runs that pass it are aborted and flagged.
    aggressive_growth:
        Ablation A1: drop the extra ``1/i`` damping from the rate
        update (``S <- S * 2**(C'/budget)`` instead of
        ``2**(C'/(budget*i))``).  Section 3.1 explains why the paper
        grows slowly: fast growth overshoots the ideal rate and lets
        ``S_u/S_v`` diverge (Lemma 5 breaks).
    uninformed_noise:
        Ablation A3: when False, uninformed nodes stay silent instead
        of sending noise, removing the occupancy signal nodes use to
        gauge ``n`` — rates then grow while the network is still large,
        and ``n_u`` estimates degrade.
    """

    b: float = 2.0
    d: float = 1.0
    listen_exp: int = 1
    first_epoch: int = 3
    s_init: float = 2.0
    helper_frac: float = 1.5
    clear_baseline_frac: float = FIG2_CLEAR_BASELINE_FRAC
    c_term_global: float = 12.0
    c_term_helper: float = 2.5
    max_epoch: int = 26
    aggressive_growth: bool = False
    uninformed_noise: bool = True

    def __post_init__(self) -> None:
        if self.b <= 0 or self.d <= 0:
            raise ConfigurationError("b and d must be positive")
        if self.listen_exp < 0:
            raise ConfigurationError("listen_exp must be >= 0")
        if self.first_epoch < 1:
            raise ConfigurationError("first_epoch must be >= 1")
        if self.s_init <= 0:
            raise ConfigurationError("s_init must be positive")
        if not 0.0 < self.helper_frac:
            raise ConfigurationError("helper_frac must be positive")
        if not 0.0 <= self.clear_baseline_frac < 1.0:
            raise ConfigurationError("clear_baseline_frac must be in [0, 1)")
        if self.c_term_global <= 0 or self.c_term_helper <= 0:
            raise ConfigurationError("termination constants must be positive")
        if self.max_epoch < self.first_epoch:
            raise ConfigurationError("max_epoch must be >= first_epoch")

    @classmethod
    def paper(cls, max_epoch: int = 30) -> "OneToNParams":
        """Faithful Figure 2 constants — expensive; for spot checks."""
        return cls(
            b=10.0,
            d=80.0,
            listen_exp=3,
            first_epoch=11,
            s_init=FIG2_S_INIT,
            helper_frac=1.0 / FIG2_HELPER_DIV,
            c_term_global=FIG2_TERM_GLOBAL,
            c_term_helper=FIG2_TERM_HELPER,
            max_epoch=max_epoch,
        )

    @classmethod
    def sim(cls, **overrides) -> "OneToNParams":
        """Laptop-scale preset (the class defaults)."""
        return cls(**overrides)

    # -- derived per-epoch quantities -------------------------------------

    def phase_length(self, epoch: int) -> int:
        return 1 << epoch

    def n_repetitions(self, epoch: int) -> int:
        return int(math.ceil(self.b * epoch * epoch))

    def listen_budget(self, epoch: int, s: np.ndarray) -> np.ndarray:
        """Nominal listening budget ``S * d * i**e`` (before the cap)."""
        return s * self.d * float(epoch) ** self.listen_exp

    def helper_threshold(self, epoch: int) -> float:
        """Case 3: heard-``m`` count needed to become a helper."""
        return self.helper_frac * self.d * float(epoch) ** self.listen_exp

    def term_global_threshold(self, epoch: int) -> float:
        """Case 1: terminate when ``S`` exceeds this."""
        return self.c_term_global * 2.0 ** (epoch / 2.0)


class OneToNBroadcast(Protocol):
    """Figure 2's 1-to-n BROADCAST as a phase-driven protocol.

    Parameters
    ----------
    n_nodes:
        System size ``n`` (the *nodes* never read it; it only sizes the
        state arrays).
    params:
        Tuning constants; defaults to :meth:`OneToNParams.sim`.
    sender:
        Index of the initially informed node.
    """

    def __init__(
        self,
        n_nodes: int,
        params: OneToNParams | None = None,
        sender: int = 0,
    ) -> None:
        if n_nodes < 1:
            raise ConfigurationError(f"n_nodes must be >= 1, got {n_nodes}")
        if not 0 <= sender < n_nodes:
            raise ConfigurationError(f"sender {sender} out of range")
        self.n_nodes = n_nodes
        self.params = params or OneToNParams.sim()
        self.sender = sender
        self.reset(np.random.default_rng(0))

    def reset(self, rng: np.random.Generator) -> None:
        self._rng = rng
        n = self.n_nodes
        self.epoch = self.params.first_epoch
        self.repetition = 0
        self.S = np.full(n, self.params.s_init, dtype=np.float64)
        self.status = np.full(n, NodeStatus.UNINFORMED, dtype=np.int64)
        self.status[self.sender] = NodeStatus.INFORMED
        self.ever_informed = np.zeros(n, dtype=bool)
        self.ever_informed[self.sender] = True
        self.n_est = np.full(n, np.nan)
        self.terminated_epoch = np.full(n, -1, dtype=np.int64)
        self.max_s_ratio = 1.0
        # Lemma 6 instrumentation: repetitions after which a helper and
        # an uninformed node coexisted (the analysis says w.h.p. never).
        self.helper_uninformed_overlaps = 0
        self.aborted = False
        self._awaiting = False
        self._emitted_listen_probs: np.ndarray | None = None

    # -- Protocol interface ------------------------------------------------

    @property
    def done(self) -> bool:
        return bool((self.status == NodeStatus.TERMINATED).all())

    @property
    def active(self) -> np.ndarray:
        return self.status != NodeStatus.TERMINATED

    def next_phase(self) -> PhaseSpec | None:
        if self._awaiting:
            raise ProtocolError("next_phase called before observe")
        if self.done:
            return None
        if self.epoch > self.params.max_epoch:
            self.aborted = True
            self.terminated_epoch[self.active] = self.epoch
            self.status[:] = NodeStatus.TERMINATED
            return None

        p = self.params
        i = self.epoch
        L = p.phase_length(i)
        active = self.active

        send_probs = np.where(active, np.minimum(1.0, self.S / L), 0.0)
        has_message = (self.status == NodeStatus.INFORMED) | (
            self.status == NodeStatus.HELPER
        )
        send_kinds = np.where(has_message, TxKind.DATA, TxKind.NOISE).astype(np.int8)
        if not p.uninformed_noise:
            # Ablation A3: silent uninformed nodes.
            send_probs = np.where(has_message, send_probs, 0.0)
        listen_probs = np.where(
            active, np.minimum(1.0, p.listen_budget(i, self.S) / L), 0.0
        )

        self._awaiting = True
        self._emitted_listen_probs = listen_probs
        return PhaseSpec(
            length=L,
            send_probs=send_probs,
            send_kinds=send_kinds,
            listen_probs=listen_probs,
            tags={
                "protocol": "fig2",
                "kind": "repetition",
                "epoch": i,
                "repetition": self.repetition,
                "n_repetitions": p.n_repetitions(i),
                "hear_threshold": p.helper_threshold(i),
            },
        )

    def observe(self, obs: PhaseObservation) -> None:
        if not self._awaiting:
            raise ProtocolError("observe called with no phase outstanding")
        self._awaiting = False

        p = self.params
        i = self.epoch
        L = p.phase_length(i)
        active = self.active

        # Rate update: grow on the clear-slot surplus over half the
        # expected listening budget.
        expected_listens = self._emitted_listen_probs * L
        clear = obs.heard_clear.astype(np.float64)
        surplus = np.maximum(0.0, clear - p.clear_baseline_frac * expected_listens)
        damping = 1.0 if p.aggressive_growth else float(i)
        with np.errstate(divide="ignore", invalid="ignore"):
            exponent = np.where(
                expected_listens > 0.0, surplus / (expected_listens * damping), 0.0
            )
        self.S = np.where(active, self.S * np.exp2(exponent), self.S)

        # Lemma 5 instrumentation: track the worst S_u/S_v divergence
        # among live nodes (ablation A1 shows it blow up).
        live = self.S[active]
        if live.size > 1:
            ratio = float(live.max() / live.min())
            self.max_s_ratio = max(self.max_s_ratio, ratio)

        heard_m = obs.heard_data

        # Figure 2's cases — at most one per node, in order.
        case1 = active & (self.S > p.term_global_threshold(i))
        case2 = (
            ~case1 & (self.status == NodeStatus.UNINFORMED) & (heard_m >= 1)
        )
        case3 = (
            ~case1
            & (self.status == NodeStatus.INFORMED)
            & (heard_m > p.helper_threshold(i))
        )
        with np.errstate(invalid="ignore"):
            helper_done = self.S >= p.c_term_helper * np.sqrt(L / self.n_est)
        case4 = (
            ~case1 & ~case3 & (self.status == NodeStatus.HELPER) & helper_done
        )

        self._apply_cases(case1, case2, case3, case4, L)

        if (
            (self.status == NodeStatus.HELPER).any()
            and (self.status == NodeStatus.UNINFORMED).any()
        ):
            self.helper_uninformed_overlaps += 1

        # Advance repetition / epoch counters.
        self.repetition += 1
        if self.repetition >= p.n_repetitions(i):
            self.repetition = 0
            self.epoch += 1
            self.S[self.active] = p.s_init

    def _apply_cases(
        self,
        case1: np.ndarray,
        case2: np.ndarray,
        case3: np.ndarray,
        case4: np.ndarray,
        L: int,
    ) -> None:
        """Apply Figure 2's at-most-one-case-per-node transitions.

        Split out so that the naive-halting strawman can override the
        helper machinery while reusing everything else.
        """
        self.status[case1] = NodeStatus.TERMINATED
        self.terminated_epoch[case1] = self.epoch

        self.status[case2] = NodeStatus.INFORMED
        self.ever_informed |= case2

        self.status[case3] = NodeStatus.HELPER
        self.n_est[case3] = L / self.S[case3] ** 2

        self.status[case4] = NodeStatus.TERMINATED
        self.terminated_epoch[case4] = self.epoch

    def summary(self) -> dict:
        informed = int(self.ever_informed.sum())
        return {
            "success": bool(self.ever_informed.all()),
            "n_informed": informed,
            "final_epoch": self.epoch,
            "aborted": self.aborted,
            "n_helpers": int((~np.isnan(self.n_est)).sum()),
            "n_estimates": self.n_est.copy(),
            "terminated_epoch": self.terminated_epoch.copy(),
            "max_s_ratio": self.max_s_ratio,
            "helper_uninformed_overlaps": self.helper_uninformed_overlaps,
        }

    # -- lockstep batch implementation ------------------------------------
    #
    # Per-node state gains a leading trial axis: ``S_b`` is ``(B, n)``,
    # epoch/repetition counters are ``(B,)``.  Scalar per-epoch factors
    # come from lookup tables computed with the serial params methods so
    # every float matches serial bit-for-bit; per-node float updates use
    # the same elementwise expressions (and association order) as serial.

    def reset_batch(self, rng_streams: list[np.random.Generator]) -> None:
        b = len(rng_streams)
        n = self.n_nodes
        self._rngs = list(rng_streams)
        p = self.params
        epochs = range(p.first_epoch, p.max_epoch + 1)
        self._tab_len = np.array([p.phase_length(e) for e in epochs], dtype=np.int64)
        self._tab_lenf = self._tab_len.astype(np.float64)
        self._tab_reps = np.array([p.n_repetitions(e) for e in epochs], dtype=np.int64)
        # listen_budget(e, s) evaluates (s * d) * float(e)**exp — keep the
        # epoch factor separate to preserve the association order.
        self._tab_epow = np.array([float(e) ** p.listen_exp for e in epochs])
        self._tab_helper = np.array([p.helper_threshold(e) for e in epochs])
        self._tab_term = np.array([p.term_global_threshold(e) for e in epochs])

        self.epoch_b = np.full(b, p.first_epoch, dtype=np.int64)
        self.repetition_b = np.zeros(b, dtype=np.int64)
        self.S_b = np.full((b, n), p.s_init, dtype=np.float64)
        self.status_b = np.full((b, n), NodeStatus.UNINFORMED, dtype=np.int64)
        self.status_b[:, self.sender] = NodeStatus.INFORMED
        self.ever_informed_b = np.zeros((b, n), dtype=bool)
        self.ever_informed_b[:, self.sender] = True
        self.n_est_b = np.full((b, n), np.nan)
        self.terminated_epoch_b = np.full((b, n), -1, dtype=np.int64)
        self.max_s_ratio_b = np.ones(b, dtype=np.float64)
        self.overlaps_b = np.zeros(b, dtype=np.int64)
        self.aborted_b = np.zeros(b, dtype=bool)
        self._awaiting_b = np.zeros(b, dtype=bool)
        self._emitted_listen_probs_b: np.ndarray | None = None

    def _epoch_index(self) -> np.ndarray:
        return np.minimum(self.epoch_b, self.params.max_epoch) - self.params.first_epoch

    def done_batch(self) -> np.ndarray:
        return (self.status_b == NodeStatus.TERMINATED).all(axis=1)

    def next_phase_batch(self, mask: np.ndarray) -> BatchPhaseSpec | None:
        if (self._awaiting_b & mask).any():
            raise ProtocolError("next_phase called before observe")
        run = mask & ~self.done_batch()
        over = run & (self.epoch_b > self.params.max_epoch)
        if over.any():
            self.aborted_b |= over
            sel = over[:, None] & (self.status_b != NodeStatus.TERMINATED)
            self.terminated_epoch_b[sel] = np.broadcast_to(
                self.epoch_b[:, None], sel.shape
            )[sel]
            self.status_b[over] = NodeStatus.TERMINATED
            run &= ~over
        if not run.any():
            return None

        p = self.params
        b = len(run)
        ei = self._epoch_index()
        lengths = np.where(run, self._tab_len[ei], 1)
        Lf = self._tab_lenf[ei][:, None]
        active = self.status_b != NodeStatus.TERMINATED

        send_probs = np.where(active, np.minimum(1.0, self.S_b / Lf), 0.0)
        has_message = (self.status_b == NodeStatus.INFORMED) | (
            self.status_b == NodeStatus.HELPER
        )
        send_kinds = np.where(has_message, TxKind.DATA, TxKind.NOISE).astype(np.int8)
        if not p.uninformed_noise:
            send_probs = np.where(has_message, send_probs, 0.0)
        budget = (self.S_b * p.d) * self._tab_epow[ei][:, None]
        listen_probs = np.where(active, np.minimum(1.0, budget / Lf), 0.0)
        dead = ~run
        if dead.any():
            send_probs[dead] = 0.0
            listen_probs[dead] = 0.0

        tags = self._batch_tags(run, ei)
        self._awaiting_b = run.copy()
        self._emitted_listen_probs_b = listen_probs
        return BatchPhaseSpec(
            lengths=lengths,
            send_probs=send_probs,
            send_kinds=send_kinds,
            listen_probs=listen_probs,
            active=run,
            groups=None,
            tags=tags,
        )

    def _batch_tags(self, run: np.ndarray, ei: np.ndarray) -> list:
        tags: list = [None] * len(run)
        for t in np.flatnonzero(run):
            e = ei[t]
            tags[t] = {
                "protocol": "fig2",
                "kind": "repetition",
                "epoch": int(self.epoch_b[t]),
                "repetition": int(self.repetition_b[t]),
                "n_repetitions": int(self._tab_reps[e]),
                "hear_threshold": float(self._tab_helper[e]),
            }
        return tags

    def observe_batch(self, obs: BatchPhaseObservation) -> None:
        act = obs.active
        if (act & ~self._awaiting_b).any():
            raise ProtocolError("observe called with no phase outstanding")
        self._awaiting_b &= ~act

        p = self.params
        ei = self._epoch_index()
        Lf = self._tab_lenf[ei][:, None]
        active = self.status_b != NodeStatus.TERMINATED
        acted = act[:, None] & active

        expected_listens = self._emitted_listen_probs_b * Lf
        clear = obs.heard[:, :, SlotStatus.CLEAR].astype(np.float64)
        surplus = np.maximum(0.0, clear - p.clear_baseline_frac * expected_listens)
        if p.aggressive_growth:
            denom = expected_listens
        else:
            denom = expected_listens * self.epoch_b.astype(np.float64)[:, None]
        with np.errstate(divide="ignore", invalid="ignore"):
            exponent = np.where(expected_listens > 0.0, surplus / denom, 0.0)
        self.S_b = np.where(acted, self.S_b * np.exp2(exponent), self.S_b)

        live_counts = active.sum(axis=1)
        smax = np.where(active, self.S_b, -np.inf).max(axis=1)
        smin = np.where(active, self.S_b, np.inf).min(axis=1)
        multi = act & (live_counts > 1)
        if multi.any():
            ratio = np.where(multi, smax / np.where(multi, smin, 1.0), 1.0)
            self.max_s_ratio_b = np.where(
                multi, np.maximum(self.max_s_ratio_b, ratio), self.max_s_ratio_b
            )

        heard_m = obs.heard[:, :, SlotStatus.DATA]
        case1 = acted & (self.S_b > self._tab_term[ei][:, None])
        case2 = ~case1 & acted & (self.status_b == NodeStatus.UNINFORMED) & (heard_m >= 1)
        case3 = (
            ~case1
            & acted
            & (self.status_b == NodeStatus.INFORMED)
            & (heard_m > self._tab_helper[ei][:, None])
        )
        with np.errstate(invalid="ignore"):
            helper_done = self.S_b >= p.c_term_helper * np.sqrt(Lf / self.n_est_b)
        case4 = (
            ~case1 & ~case3 & acted & (self.status_b == NodeStatus.HELPER) & helper_done
        )

        self._apply_cases_batch(case1, case2, case3, case4, Lf, acted)

        overlap = (
            act
            & (self.status_b == NodeStatus.HELPER).any(axis=1)
            & (self.status_b == NodeStatus.UNINFORMED).any(axis=1)
        )
        self.overlaps_b += overlap

        self.repetition_b[act] += 1
        roll = act & (self.repetition_b >= self._tab_reps[ei])
        if roll.any():
            self.repetition_b[roll] = 0
            self.epoch_b[roll] += 1
            sel = roll[:, None] & (self.status_b != NodeStatus.TERMINATED)
            self.S_b[sel] = p.s_init

    def _apply_cases_batch(
        self,
        case1: np.ndarray,
        case2: np.ndarray,
        case3: np.ndarray,
        case4: np.ndarray,
        Lf: np.ndarray,
        acted: np.ndarray,
    ) -> None:
        """Batched :meth:`_apply_cases`; masks are ``(B, n)``, gated on
        ``acted`` (rows outside this step's phase stay frozen)."""
        epoch_grid = np.broadcast_to(self.epoch_b[:, None], self.status_b.shape)
        self.status_b[case1] = NodeStatus.TERMINATED
        self.terminated_epoch_b[case1] = epoch_grid[case1]

        self.status_b[case2] = NodeStatus.INFORMED
        self.ever_informed_b |= case2

        self.status_b[case3] = NodeStatus.HELPER
        if case3.any():
            self.n_est_b[case3] = (Lf / self.S_b**2)[case3]

        self.status_b[case4] = NodeStatus.TERMINATED
        self.terminated_epoch_b[case4] = epoch_grid[case4]

    def summary_batch(self) -> list[dict]:
        return [
            {
                "success": bool(self.ever_informed_b[t].all()),
                "n_informed": int(self.ever_informed_b[t].sum()),
                "final_epoch": int(self.epoch_b[t]),
                "aborted": bool(self.aborted_b[t]),
                "n_helpers": int((~np.isnan(self.n_est_b[t])).sum()),
                "n_estimates": self.n_est_b[t].copy(),
                "terminated_epoch": self.terminated_epoch_b[t].copy(),
                "max_s_ratio": float(self.max_s_ratio_b[t]),
                "helper_uninformed_overlaps": int(self.overlaps_b[t]),
            }
            for t in range(len(self.epoch_b))
        ]
