"""Random-number-generator plumbing.

The paper's model gives every node an independent stream of random bits
that the adversary cannot predict within the current slot.  We mirror
that with NumPy's ``SeedSequence``-based spawning: a single experiment
seed deterministically derives independent child generators for the
protocol, the adversary, and each replication, so that

* replications are statistically independent,
* an adversary cannot "see" node randomness by sharing a generator, and
* every run is exactly reproducible from ``(seed, labels)``.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

__all__ = ["RngFactory", "as_generator", "spawn", "derive"]


def as_generator(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Accepts an existing generator (returned unchanged), an integer seed,
    or ``None`` for OS entropy.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Spawn ``count`` statistically independent child generators."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(count)]


def derive(seed: int, *labels: int) -> np.random.Generator:
    """Derive a generator from a root seed and a path of integer labels.

    ``derive(seed, a, b)`` always produces the same stream, and streams
    with different label paths are independent.  Used by the experiment
    runner to give replication ``r`` of experiment ``e`` its own stream
    without coordinating state.
    """
    return np.random.default_rng(np.random.SeedSequence(entropy=seed, spawn_key=labels))


class RngFactory:
    """Deterministic factory of independent generators for one run.

    A run needs several independent streams (protocol nodes, adversary,
    engine tie-breaks).  The factory hands them out by name so that the
    order in which components are constructed cannot change the streams
    they receive.

    Examples
    --------
    >>> fac = RngFactory(1234)
    >>> fac.get("protocol") is fac.get("protocol")
    True
    >>> fac.get("protocol") is not fac.get("adversary")
    True
    """

    def __init__(self, seed: int | np.random.Generator | None = None) -> None:
        if isinstance(seed, np.random.Generator):
            # Deterministically re-seed from the generator's stream so the
            # factory owns private child streams.
            seed = int(seed.integers(0, 2**63 - 1))
        self._seed_seq = np.random.SeedSequence(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The stream depends only on the factory seed and the name, never
        on the order of ``get`` calls.
        """
        if name not in self._streams:
            # Hash the name into a stable spawn key.
            key = tuple(name.encode("utf-8"))
            child = np.random.SeedSequence(
                entropy=self._seed_seq.entropy, spawn_key=key
            )
            self._streams[name] = np.random.default_rng(child)
        return self._streams[name]

    def stream_names(self) -> Iterator[str]:
        """Names of the streams created so far (for diagnostics)."""
        return iter(sorted(self._streams))
