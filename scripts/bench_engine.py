#!/usr/bin/env python3
"""Benchmark the channel kernels and record the results.

Runs the engine micro-benchmarks (``benchmarks/test_engine_micro.py``)
under pytest-benchmark and distils the full JSON output into a compact
``BENCH_engine.json`` at the repo root: per-benchmark mean/stddev timings
plus the headline sparse-vs-dense speedup ratios at L = 2**20.  The
compact file is committed so the O(events) claim in DESIGN.md is backed
by a recorded measurement.

Usage:

    PYTHONPATH=src python scripts/bench_engine.py [extra pytest args]
    PYTHONPATH=src python scripts/bench_engine.py --batch
    PYTHONPATH=src python scripts/bench_engine.py --profile [--quick]

Extra args are forwarded to pytest, e.g. ``-k large_L`` to time only the
kernel comparison.  ``--batch`` instead times ``Simulator.run_batch``
against serial ``run`` loops on replicate-shaped workloads and merges a
``batch_vs_serial`` section into ``BENCH_engine.json``.  ``--profile``
breaks a batched E1-style replicate down by engine stage (protocol /
sampling / adversary / resolve / accounting, with the residual loop
overhead) and merges a ``batch_profile`` section; ``--quick`` shrinks it
to a smoke run for CI.
"""

from __future__ import annotations

import json
import platform
import subprocess
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
OUT = ROOT / "BENCH_engine.json"


def _batch_workloads():
    sys.path.insert(0, str(ROOT / "src"))
    from repro.adversaries import EpochTargetJammer, SilentAdversary
    from repro.protocols import (
        OneToNBroadcast,
        OneToNParams,
        OneToOneBroadcast,
        OneToOneParams,
    )

    p11 = OneToOneParams.sim()
    pn = OneToNParams.sim()
    return {
        "e1_style_one_to_one": (
            lambda: OneToOneBroadcast(p11),
            lambda: EpochTargetJammer(
                p11.first_epoch + 3, q=1.0, target_listener=True
            ),
            64,  # trials
            64,  # batch size
        ),
        "e6_style_one_to_n": (
            lambda: OneToNBroadcast(16, OneToNParams.sim()),
            lambda: EpochTargetJammer(pn.first_epoch + 1, q=0.9),
            16,
            16,
        ),
        # Batched twin of test_full_run_broadcast_n16 in the pytest set.
        "n16_broadcast_silent": (
            lambda: OneToNBroadcast(16),
            lambda: SilentAdversary(),
            8,
            8,
        ),
    }


def _mc_batch_workloads():
    """Multichannel workloads; entries carry their own simulator factory
    because ``MCSimulator`` needs ``n_channels`` at construction."""
    sys.path.insert(0, str(ROOT / "src"))
    from repro.multichannel import (
        CZBroadcast,
        CZParams,
        FractionJammer,
        MCSimulator,
    )

    n_channels = 8
    params = CZParams.sim(n_nodes=16, n_channels=n_channels)

    def mk_p():
        return CZBroadcast(params)

    def mk_a():
        return FractionJammer(0.05, max_total=2000)

    def mk_sim():
        return MCSimulator(mk_p(), mk_a(), n_channels, max_slots=2_000_000)

    # E18-shaped: Chen-Zheng broadcast vs an eps-fraction jammer at C=8.
    return {"e18_style_cz_fraction": (mk_p, mk_a, mk_sim, 32, 32)}


def bench_batch(repeats: int = 3) -> int:
    """Time run_batch against serial run loops; merge into the record.

    Since the lockstep batched-protocol layer (``next_phase_batch`` /
    ``observe_batch``) the per-trial Python floor is gone: protocol
    state advances as stacked arrays, so replicate-shaped 1-to-1 sweeps
    gain ~5x and event-heavy 1-to-n workloads ~2.5-3x; the multichannel
    E18-style workload (``MCSimulator.run_batch``) gains ~3x.  Each
    timing is
    the best of ``repeats`` runs to damp scheduler noise, and every
    batched result is asserted equal to its serial twin (the bench
    doubles as a byte-identity check).
    """
    from repro.engine.simulator import Simulator

    workloads = {
        name: (
            mk_p,
            mk_a,
            (lambda mk_p=mk_p, mk_a=mk_a: Simulator(mk_p(), mk_a())),
            n_trials,
            batch_size,
        )
        for name, (mk_p, mk_a, n_trials, batch_size) in
        _batch_workloads().items()
    }
    workloads.update(_mc_batch_workloads())

    section = {}
    for name, (mk_p, mk_a, mk_sim, n_trials, batch_size) in workloads.items():
        seeds = list(range(n_trials))
        mk_sim().run(0)  # warm caches / imports

        serial_s = batch_s = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            serial = [mk_sim().run(s) for s in seeds]
            serial_s = min(serial_s, time.perf_counter() - t0)

            t0 = time.perf_counter()
            batched = []
            for i in range(0, n_trials, batch_size):
                batched.extend(
                    mk_sim().run_batch(
                        seeds[i : i + batch_size],
                        make_protocol=mk_p,
                        make_adversary=mk_a,
                    )
                )
            batch_s = min(batch_s, time.perf_counter() - t0)

            for a, b in zip(serial, batched):  # bench doubles as a check
                assert a.adversary_cost == b.adversary_cost
                assert list(a.node_costs) == list(b.node_costs)
        section[name] = {
            "n_trials": n_trials,
            "batch_size": batch_size,
            "repeats": repeats,
            "serial_s": serial_s,
            "batch_s": batch_s,
            "speedup": serial_s / batch_s,
        }
        print(
            f"  {name}: serial {serial_s:.2f}s, batch({batch_size}) "
            f"{batch_s:.2f}s -> {serial_s / batch_s:.2f}x"
        )

    record = json.loads(OUT.read_text()) if OUT.exists() else {}
    record["batch_vs_serial"] = section
    record.setdefault("machine", {})
    record["machine"] = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "system": platform.system(),
    }
    OUT.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"wrote {OUT}")
    return 0


def bench_profile(quick: bool = False, write: bool | None = None) -> int:
    """Stage-breakdown of the batched E1-style replicate.

    Runs the workload once serially and once batched with the engine's
    ``profile=`` wall clocks on, and reports each stage's share of the
    wall time (protocol / sampling / adversary / resolve / accounting)
    plus the residual driver loop overhead (``wall - sum(stages)``).
    ``quick`` shrinks the trial count for a CI smoke run and skips
    writing ``BENCH_engine.json``.
    """
    workloads = _batch_workloads()
    from repro.engine.simulator import Simulator

    mk_p, mk_a, n_trials, batch_size = workloads["e1_style_one_to_one"]
    if quick:
        n_trials = batch_size = 8
    if write is None:
        write = not quick
    seeds = list(range(n_trials))
    Simulator(mk_p(), mk_a()).run(0)  # warm caches / imports

    section = {"n_trials": n_trials, "batch_size": batch_size}
    for mode in ("serial", "batch"):
        prof: dict[str, float] = {}
        t0 = time.perf_counter()
        if mode == "serial":
            for s in seeds:
                Simulator(mk_p(), mk_a(), profile=prof).run(s)
        else:
            for i in range(0, n_trials, batch_size):
                Simulator(mk_p(), mk_a(), profile=prof).run_batch(
                    seeds[i : i + batch_size],
                    make_protocol=mk_p,
                    make_adversary=mk_a,
                )
        wall = time.perf_counter() - t0
        prof["loop_overhead"] = wall - sum(prof.values())
        section[mode] = {
            "wall_s": wall,
            "stages_s": {k: round(v, 6) for k, v in sorted(prof.items())},
            "stage_fractions": {
                k: round(v / wall, 4) for k, v in sorted(prof.items())
            },
        }
        parts = ", ".join(
            f"{k} {v / wall:.0%}" for k, v in sorted(prof.items())
        )
        print(f"  {mode}: wall {wall:.3f}s ({parts})")

    if write:
        record = json.loads(OUT.read_text()) if OUT.exists() else {}
        record["batch_profile"] = {"e1_style_one_to_one": section}
        OUT.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
        print(f"wrote {OUT}")
    return 0


def main() -> int:
    argv = sys.argv[1:]
    if "--profile" in argv:
        return bench_profile(quick="--quick" in argv)
    if "--batch" in argv:
        return bench_batch()
    with tempfile.TemporaryDirectory() as tmp:
        raw_path = Path(tmp) / "bench.json"
        cmd = [
            sys.executable,
            "-m",
            "pytest",
            str(ROOT / "benchmarks" / "test_engine_micro.py"),
            "--benchmark-only",
            f"--benchmark-json={raw_path}",
            "-q",
            *sys.argv[1:],
        ]
        proc = subprocess.run(cmd, cwd=ROOT)
        if proc.returncode != 0:
            return proc.returncode
        raw = json.loads(raw_path.read_text())

    benchmarks = {}
    for b in raw["benchmarks"]:
        benchmarks[b["name"]] = {
            "mean_s": b["stats"]["mean"],
            "stddev_s": b["stats"]["stddev"],
            "rounds": b["stats"]["rounds"],
        }

    # Headline numbers: sparse resolver vs dense oracle on the huge
    # sparse-traffic phases (L = 2**20, ~64 events).
    speedups = {}
    for jam in ("suffix", "epoch"):
        sparse = benchmarks.get(f"test_resolve_phase_sparse_large_L[{jam}]")
        dense = benchmarks.get(f"test_resolve_phase_dense_oracle_large_L[{jam}]")
        if sparse and dense:
            speedups[jam] = {
                "sparse_mean_s": sparse["mean_s"],
                "dense_mean_s": dense["mean_s"],
                "speedup": dense["mean_s"] / sparse["mean_s"],
            }

    OUT.write_text(
        json.dumps(
            {
                "machine": {
                    "python": platform.python_version(),
                    "machine": platform.machine(),
                    "system": platform.system(),
                },
                "sparse_vs_dense_large_L": speedups,
                "benchmarks": benchmarks,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    print(f"wrote {OUT}")
    for jam, s in speedups.items():
        print(
            f"  L=2**20 {jam} jam: sparse {s['sparse_mean_s'] * 1e6:.1f} us, "
            f"dense {s['dense_mean_s'] * 1e6:.1f} us -> {s['speedup']:.0f}x"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
