"""Collision/CCA resolution for one phase — sparse, O(events) hot path.

This is the hot path of the whole simulator.  One call resolves a phase
of ``L`` slots, but the work scales with the *events* in the phase —
``O(#sends + #listens + #spoofs + #jam intervals)`` — never with ``L``
itself: statuses are evaluated only at the union of transmission slots
and listening slots, and jam schedules are interval
(:class:`~repro.channel.intervals.SlotSet`) queries via
``searchsorted``.  At the sweep scale the paper's theorems care about
(phases of ``2**20`` slots with a handful of events each) this is what
makes large-``T`` experiments feasible.

The dense O(L) reference implementation is kept verbatim in
:mod:`repro.channel.model_dense` as a differential oracle; the
``engine``-marked test suite asserts both resolvers return bit-identical
:class:`~repro.channel.events.PhaseOutcome`\\ s on randomised phases,
and the CI gate replays a full experiment under both.

Semantics implemented (Section 1.2 of the paper):

* exactly one transmission in an un-jammed slot ⇒ listeners of that
  group decode it (status = the transmission's kind);
* two or more transmissions (node sends and adversarial spoofs alike)
  ⇒ noise;
* a slot jammed for a group ⇒ that group hears noise regardless of
  content;
* no transmissions and no jam ⇒ clear;
* a node scheduled to both send and listen in one slot performs only
  the send (a half-duplex radio cannot do both), and is charged once;
* a sender never "hears" its own transmission.
"""

from __future__ import annotations

import os

import numpy as np

from repro.channel.events import (
    N_STATUS,
    JamPlan,
    ListenEvents,
    PhaseOutcome,
    SendEvents,
    SlotStatus,
)
from repro.channel.model_dense import (
    resolve_phase_dense,
    slot_content,
    validate_phase_inputs,
)

__all__ = [
    "resolve_phase",
    "resolve_phase_dense",
    "slot_content",
    "slot_content_at",
    "get_resolver",
    "DENSE_RESOLVER_ENV",
]

#: Setting this environment variable to ``1``/``true``/``yes``/``on``
#: makes the engine default to the dense oracle resolver — the lever the
#: CI byte-identity gate uses to replay a whole experiment densely.
DENSE_RESOLVER_ENV = "REPRO_DENSE_RESOLVER"


def _tx_events(sends: SendEvents, plan: JamPlan) -> tuple[np.ndarray, np.ndarray]:
    """All on-air transmissions of the phase: node sends plus spoofs."""
    tx_slots = sends.slots
    tx_kinds = sends.kinds
    if len(plan.spoof_slots):
        tx_slots = np.concatenate([tx_slots, plan.spoof_slots])
        tx_kinds = np.concatenate([tx_kinds, plan.spoof_kinds])
    return tx_slots, tx_kinds


def _unique_tx_content(
    tx_slots: np.ndarray, tx_kinds: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per distinct transmission slot, its un-jammed content status.

    Returns ``(slots, statuses)`` with ``slots`` sorted ascending: a
    lone transmission decodes as its kind, two or more collide to NOISE.
    Slots carrying no transmission are implicitly CLEAR.
    """
    uniq, first, counts = np.unique(
        tx_slots, return_index=True, return_counts=True
    )
    statuses = tx_kinds[first].astype(np.int8)
    statuses[counts >= 2] = SlotStatus.NOISE
    return uniq, statuses


def slot_content_at(
    slots: np.ndarray, sends: SendEvents, plan: JamPlan
) -> np.ndarray:
    """Un-jammed channel content at the queried ``slots`` only.

    The sparse counterpart of :func:`slot_content`: evaluates the
    collision outcome at ``len(slots)`` query points in
    ``O((#tx + #queries) log #tx)`` instead of materialising a length-L
    array.  Jamming is *not* applied — it is per-group and applied by
    :func:`resolve_phase`.
    """
    slots = np.asarray(slots, dtype=np.int64)
    tx_slots, tx_kinds = _tx_events(sends, plan)
    if len(tx_slots) == 0:
        return np.zeros(len(slots), dtype=np.int8)  # SlotStatus.CLEAR
    uniq, statuses = _unique_tx_content(tx_slots, tx_kinds)
    pos = np.searchsorted(uniq, slots)
    safe = np.minimum(pos, len(uniq) - 1)
    hit = uniq[safe] == slots
    out = np.zeros(len(slots), dtype=np.int8)
    out[hit] = statuses[safe[hit]]
    return out


def resolve_phase(
    length: int,
    n_nodes: int,
    sends: SendEvents,
    listens: ListenEvents,
    plan: JamPlan,
    groups: np.ndarray | None = None,
) -> PhaseOutcome:
    """Resolve every slot of a phase and tally what each node heard.

    Parameters
    ----------
    length:
        Number of slots in the phase.
    n_nodes:
        Total number of (good) nodes; node indices in the event arrays
        must lie in ``[0, n_nodes)``.
    sends, listens:
        Sparse action sets sampled by the engine from the protocol's
        per-slot probabilities.
    plan:
        The adversary's (already normalised) jam/spoof plan.
    groups:
        Optional ``(n_nodes,)`` int array assigning each node to a jam
        group for an ``l``-uniform adversary.  ``None`` means everyone is
        in group 0 (the 1-uniform case).

    Returns
    -------
    PhaseOutcome
        Per-node heard-status counts, per-node costs, and channel-wide
        ground truth (``n_clear``/``n_noise`` are group 0's view).

    Notes
    -----
    Cost is ``O(E log E)`` for ``E = #sends + #listens + #spoofs +
    #jam intervals`` — independent of ``length``.  Bit-identical to
    :func:`~repro.channel.model_dense.resolve_phase_dense`.
    """
    groups = validate_phase_inputs(length, n_nodes, sends, listens, plan, groups)

    tx_slots, tx_kinds = _tx_events(sends, plan)
    if len(tx_slots):
        uniq_tx, tx_status = _unique_tx_content(tx_slots, tx_kinds)
    else:
        uniq_tx = np.empty(0, np.int64)
        tx_status = np.empty(0, np.int8)

    # Half-duplex: drop listen events that coincide with the same node's
    # own send.  Key each (node, slot) pair into a single int64 and
    # binary-search the listen keys against the sorted send keys (the
    # sort is O(#sends log #sends); `np.isin` would re-sort *both* sides
    # and build an intermediate boolean lattice every phase).
    listen_nodes, listen_slots = listens.nodes, listens.slots
    if len(sends) and len(listens):
        send_keys = np.sort(sends.nodes * length + sends.slots)
        listen_keys = listen_nodes * length + listen_slots
        pos = np.searchsorted(send_keys, listen_keys)
        safe = np.minimum(pos, len(send_keys) - 1)
        keep = send_keys[safe] != listen_keys
        listen_nodes = listen_nodes[keep]
        listen_slots = listen_slots[keep]

    # Un-jammed content status under each listen event, via one binary
    # search into the distinct transmission slots.
    if len(uniq_tx) and len(listen_slots):
        pos = np.searchsorted(uniq_tx, listen_slots)
        safe = np.minimum(pos, len(uniq_tx) - 1)
        hit = uniq_tx[safe] == listen_slots
        base_status = np.zeros(len(listen_slots), dtype=np.int64)
        base_status[hit] = tx_status[safe[hit]]
    else:
        base_status = np.zeros(len(listen_slots), dtype=np.int64)

    # Per-group views: jamming overrides content with NOISE.  Group
    # count is tiny (<= l <= 2 in the paper's experiments); per group
    # the work is one interval-membership query per event.
    group_ids = np.unique(groups)
    heard = np.zeros((n_nodes, N_STATUS), dtype=np.int64)
    is_data_tx = tx_status == SlotStatus.DATA
    data_decodable = np.zeros(int(is_data_tx.sum()), dtype=bool)
    data_tx_slots = uniq_tx[is_data_tx]
    for g in group_ids:
        jam_g = plan.jam_set(int(g))
        data_decodable |= ~jam_g.contains(data_tx_slots)

        in_group = groups[listen_nodes] == g
        if not in_group.any():
            continue
        nodes_g = listen_nodes[in_group]
        statuses = np.where(
            jam_g.contains(listen_slots[in_group]),
            np.int64(SlotStatus.NOISE),
            base_status[in_group],
        )
        flat = np.bincount(nodes_g * N_STATUS + statuses, minlength=n_nodes * N_STATUS)
        heard += flat.reshape(n_nodes, N_STATUS)

    send_cost = np.bincount(sends.nodes, minlength=n_nodes)
    listen_cost = np.bincount(listen_nodes, minlength=n_nodes)

    # Channel-wide ground truth from group 0's perspective: CLEAR slots
    # are those with neither transmission nor group-0 jam, NOISE slots
    # the group-0 jam plus un-jammed collisions/noise transmissions.
    jam_0 = plan.jam_set(0)
    tx_jammed_0 = jam_0.contains(uniq_tx)
    n_clear = length - jam_0.size - int((~tx_jammed_0).sum())
    n_noise = jam_0.size + int(
        ((tx_status == SlotStatus.NOISE) & ~tx_jammed_0).sum()
    )

    return PhaseOutcome(
        heard=heard,
        send_cost=send_cost,
        listen_cost=listen_cost,
        adversary_cost=plan.cost,
        n_clear=n_clear,
        n_noise=n_noise,
        data_slots=int(data_decodable.sum()),
    )


def get_resolver(dense: bool | None = None):
    """Select the phase resolver.

    ``dense=True`` returns the O(L) oracle, ``dense=False`` the sparse
    O(events) resolver, and ``None`` (the default) consults the
    :data:`DENSE_RESOLVER_ENV` environment variable so a whole process
    tree — including executor worker processes, which inherit the
    environment — can be pinned to the oracle without code changes.
    """
    if dense is None:
        dense = os.environ.get(DENSE_RESOLVER_ENV, "").strip().lower() in {
            "1",
            "true",
            "yes",
            "on",
        }
    return resolve_phase_dense if dense else resolve_phase
