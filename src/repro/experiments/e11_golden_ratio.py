"""E11 — Theorem 5: the golden-ratio exponent under spoofing.

Two parts:

1. *Closed-form game*: sweep the cost split ``delta`` and evaluate the
   adversary's two scenarios; the protocol designer's optimum
   ``argmin_d max{(1-d)/d, d}`` must land on ``phi - 1 ~ 0.618``
   (checked against a scipy minimiser and against the sweep's argmin).

2. *Executed scenario (ii)*: run Figure 1 and the KSY reconstruction
   against an adversary that simulates Bob with spoofed nacks, at
   growing horizon caps, and fit Alice's realized cost against the
   adversary's realized cost.  Figure 1 — correct only when Bob is
   authenticated — exchanges energy ~1:1 with the spoofer (exponent
   ~1, i.e. *not* resource-competitive in this model), while KSY's
   golden-ratio rate split keeps Alice's exponent near
   ``(phi-1)**2/(phi-1) = phi - 1 ~ 0.618``.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.scaling import fit_power_law
from repro.analysis.theory import spoof_exponent
from repro.channel.events import TxKind
from repro.constants import PHI_MINUS_1
from repro.experiments.registry import ExperimentReport, RunConfig
from repro.experiments.runner import Table
from repro.lowerbounds.spoof_game import optimal_delta, simulate_spoofing_run
from repro.protocols.ksy import KSYOneToOne, KSYParams
from repro.protocols.one_to_one import OneToOneBroadcast, OneToOneParams
from repro.rng import derive


def run(config: RunConfig | None = None) -> ExperimentReport:
    cfg = config if config is not None else RunConfig()
    seed, quick = cfg.seed, cfg.quick
    report = ExperimentReport(eid="E11", title="", anchor="")

    # Part 1: the closed-form curve.
    deltas = np.linspace(0.35, 0.85, 11 if quick else 51)
    exponents = spoof_exponent(deltas)
    t1 = Table("E11a: exponent max{(1-d)/d, d} over the split d",
               ["delta", "exponent"])
    for d, e in zip(deltas, exponents):
        t1.add_row(float(d), float(e))
    report.tables.append(t1)

    argmin_sweep = float(deltas[np.argmin(exponents)])
    d_star, v_star = optimal_delta()
    report.notes.append(
        f"optimal delta = {d_star:.6f} with exponent {v_star:.6f}; "
        f"phi - 1 = {PHI_MINUS_1:.6f}"
    )
    report.checks["minimiser equals phi - 1 (1e-5)"] = abs(d_star - PHI_MINUS_1) < 1e-5
    report.checks["minimum exponent equals phi - 1 (1e-5)"] = (
        abs(v_star - PHI_MINUS_1) < 1e-5
    )
    report.checks["sweep argmin within grid step of phi - 1"] = (
        abs(argmin_sweep - PHI_MINUS_1) <= float(deltas[1] - deltas[0]) + 1e-9
    )

    # Part 2: executed scenario (ii).
    caps = (1 << 13, 1 << 15, 1 << 17) if quick else (1 << 13, 1 << 15, 1 << 17, 1 << 19)
    t2 = Table(
        "E11b: Alice's cost vs spoofing adversary's cost (scenario ii)",
        ["protocol", "horizon", "alice_cost", "adversary_cost"],
    )
    fits = {}
    for name, make in (
        ("fig1", lambda: OneToOneBroadcast(OneToOneParams.sim())),
        ("ksy", lambda: KSYOneToOne(KSYParams.sim())),
    ):
        pts = []
        for j, cap in enumerate(caps):
            a_costs, adv_costs = [], []
            for r in range(2 if quick else 5):
                a, _b, adv = simulate_spoofing_run(
                    make(), seed=int(derive(seed, j, r).integers(0, 2**31)),
                    spoof_kind=TxKind.NACK, max_slots=cap,
                )
                a_costs.append(a)
                adv_costs.append(adv)
            pt = (float(np.mean(adv_costs)), float(np.mean(a_costs)))
            pts.append(pt)
            t2.add_row(name, cap, pt[1], pt[0])
        arr = np.array(pts)
        fits[name] = fit_power_law(arr[:, 0], arr[:, 1], n_bootstrap=0)
    report.tables.append(t2)

    report.notes.append(f"fig1 Alice-vs-adversary fit: {fits['fig1']}")
    report.notes.append(f"ksy  Alice-vs-adversary fit: {fits['ksy']}")
    report.checks["fig1 is ~linear under spoofing (exponent > 0.85)"] = (
        fits["fig1"].exponent > 0.85
    )
    report.checks["ksy stays sublinear (exponent < 0.85)"] = (
        fits["ksy"].exponent < 0.85
    )
    report.checks["ksy exponent within [0.45, 0.8] of golden ratio"] = (
        0.45 <= fits["ksy"].exponent <= 0.8
    )
    return report
