"""Ablation benchmark A5: robustness to the unit-cost radio abstraction.

Re-prices recorded send/listen slot counts under TX-heavy and RX-heavy
radio models and checks the theorem shapes survive; also records each
protocol's send/listen spend composition; see
src/repro/experiments/a05_cost_model.py.
"""


def test_a05(run_quick):
    run_quick("A5")
