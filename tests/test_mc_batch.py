"""Differential tests for the batched multichannel kernel.

The contract mirrors the single-channel suite in
``tests/engine/test_batch.py``: trial ``t`` of
``MCSimulator.run_batch(seeds)`` must equal ``run(seeds[t])`` exactly —
same per-trial rng streams (``protocol``, ``hopping``, ``adversary``),
same costs, same stats, same phase history — for every protocol and
adversary in the multichannel zoo.  On top of that sit the regression
pins for the three MC-specific bug classes: hop-rng stream ordering at
C>1, real-slot cap semantics, and dirty-state deepcopy fallbacks.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import BudgetExceededError
from repro.experiments.registry import RunConfig
from repro.experiments.runner import mc_replicate
from repro.multichannel import (
    ChannelBandJammer,
    ChannelFollowerJammer,
    ChannelSweepJammer,
    CZBroadcast,
    CZParams,
    FractionJammer,
    MCBudgetCap,
    MCEpochTargetJammer,
    MCSimulator,
)
from repro.multichannel.engine import _hop, _hop_batch, _half_duplex
from repro.channel.events import ListenEvents, SendEvents
from repro.rng import RngFactory
from repro.store import run_result_to_dict

pytestmark = pytest.mark.engine

C = 4


def mk_cz():
    return CZBroadcast(CZParams.sim(n_nodes=16, n_channels=C))


def mk_pair():
    from repro.multichannel import cz_pair_protocol

    return cz_pair_protocol(C)


ADVERSARIES = {
    "fraction": lambda: FractionJammer(0.15, max_total=2000),
    "fraction-unbounded": lambda: FractionJammer(0.4),
    "sweep": lambda: ChannelSweepJammer(2, step=3, q=0.8, max_total=2000),
    "follower": lambda: ChannelFollowerJammer(q=0.9),
    "follower-budget": lambda: ChannelFollowerJammer(q=0.9, max_total=600),
    "band": lambda: ChannelBandJammer(2, q=0.6, max_total=2000),
    "epoch-target": lambda: MCEpochTargetJammer(12, q=1.0),
    "cap-fraction": lambda: MCBudgetCap(FractionJammer(0.25), budget=500),
    "cap-sweep": lambda: MCBudgetCap(
        ChannelSweepJammer(3, step=1, q=1.0), budget=800
    ),
}


def result_json(result) -> str:
    return json.dumps(run_result_to_dict(result), sort_keys=True)


def assert_identical(batch, serial):
    assert len(batch) == len(serial)
    for got, want in zip(batch, serial):
        assert result_json(got) == result_json(want)
        assert got.phase_history == want.phase_history


class TestMCDifferential:
    """run_batch == run across the protocol × adversary grid."""

    @pytest.mark.parametrize("adv", sorted(ADVERSARIES), ids=sorted(ADVERSARIES))
    @pytest.mark.parametrize(
        "mk_p", [mk_cz, mk_pair], ids=["cz", "pair-hop"]
    )
    def test_grid(self, mk_p, adv):
        mk_a = ADVERSARIES[adv]
        seeds = [5, 6, 7]
        sim = MCSimulator(
            mk_p(), mk_a(), C, max_slots=100_000, keep_history=True
        )
        batch = sim.run_batch(seeds, make_protocol=mk_p, make_adversary=mk_a)
        serial = [
            MCSimulator(
                mk_p(), mk_a(), C, max_slots=100_000, keep_history=True
            ).run(s)
            for s in seeds
        ]
        assert_identical(batch, serial)

    @settings(max_examples=10, deadline=None)
    @given(
        seeds=st.lists(st.integers(0, 2**31), min_size=1, max_size=5),
        q=st.floats(0.0, 1.0),
        eps=st.floats(0.05, 0.95),
    )
    def test_hypothesis_differential(self, seeds, q, eps):
        mk_a = lambda: MCBudgetCap(  # noqa: E731
            ChannelFollowerJammer(q=q), budget=400
        )
        mk_b = lambda: FractionJammer(eps, max_total=1500)  # noqa: E731
        for mk_adv in (mk_a, mk_b):
            sim = MCSimulator(mk_cz(), mk_adv(), C, max_slots=50_000)
            batch = sim.run_batch(
                seeds, make_protocol=mk_cz, make_adversary=mk_adv
            )
            serial = [
                MCSimulator(mk_cz(), mk_adv(), C, max_slots=50_000).run(s)
                for s in seeds
            ]
            assert_identical(batch, serial)

    def test_heterogeneous_adversaries_fall_back(self):
        # Mixed adversary types per trial route through the MCAdversary
        # base loop; results must still match serial exactly.
        zoo = [
            lambda: FractionJammer(0.2, max_total=1000),
            lambda: ChannelSweepJammer(2, q=0.7),
            lambda: ChannelFollowerJammer(q=0.5),
        ]
        calls = iter(range(100))
        mk_a = lambda: zoo[next(calls) % len(zoo)]()  # noqa: E731
        seeds = [1, 2, 3]
        sim = MCSimulator(mk_cz(), zoo[0](), C, max_slots=50_000)
        batch = sim.run_batch(seeds, make_protocol=mk_cz, make_adversary=mk_a)
        serial = []
        for i, s in enumerate(seeds):
            serial.append(
                MCSimulator(
                    mk_cz(), zoo[i % len(zoo)](), C, max_slots=50_000
                ).run(s)
            )
        assert_identical(batch, serial)

    def test_dense_resolver_matches(self):
        mk_a = ADVERSARIES["fraction"]
        seeds = [3, 4]
        sparse = MCSimulator(mk_cz(), mk_a(), C, max_slots=20_000).run_batch(
            seeds, make_protocol=mk_cz, make_adversary=mk_a
        )
        dense = MCSimulator(
            mk_cz(), mk_a(), C, max_slots=20_000, resolver="dense"
        ).run_batch(seeds, make_protocol=mk_cz, make_adversary=mk_a)
        assert_identical(dense, list(sparse))


class TestHopRngContract:
    """Satellite: the hop consumes the shared ``hopping`` stream in the
    serial order (half-duplex filter, then sends, then listens) at C>1.
    The C=1 bit-identity tests consume zero hop draws and cover none of
    this."""

    def _events(self, rng, length, n_nodes=6, n_each=10):
        s_nodes = rng.integers(0, n_nodes, n_each).astype(np.int64)
        s_slots = rng.integers(0, length, n_each).astype(np.int64)
        l_nodes = rng.integers(0, n_nodes, n_each).astype(np.int64)
        l_slots = rng.integers(0, length, n_each).astype(np.int64)
        kinds = np.zeros(n_each, dtype=np.int8)
        return (
            SendEvents(s_nodes, s_slots, kinds),
            ListenEvents(l_nodes, l_slots),
        )

    def test_hop_batch_matches_serial_order_and_stream_state(self):
        length, n_channels = 32, 4
        gen = np.random.default_rng(7)
        events = [self._events(gen, length) for _ in range(3)]
        rngs_a = [np.random.default_rng(100 + t) for t in range(3)]
        rngs_b = [np.random.default_rng(100 + t) for t in range(3)]

        v_sends, v_listens = _hop_batch(
            events, [length] * 3, n_channels, rngs_a
        )
        for t, (sends, listens) in enumerate(events):
            kept = _half_duplex(sends, listens, length)
            want_s = _hop(sends.slots, length, n_channels, rngs_b[t])
            want_l = _hop(kept.slots, length, n_channels, rngs_b[t])
            assert np.array_equal(v_sends[t].slots, want_s)
            assert np.array_equal(v_listens[t].slots, want_l)
            assert np.array_equal(v_listens[t].nodes, kept.nodes)
            # Stream end-state: exactly the serial draws, no more.
            assert rngs_a[t].integers(2**62) == rngs_b[t].integers(2**62)

    def test_half_duplex_filter_feeds_listen_hop(self):
        # The filter removes listen events *before* the listen hop, so
        # swapping filter and hop would draw a different count.  Build a
        # case where every listen collides with a send.
        length, n_channels = 16, 4
        nodes = np.arange(4, dtype=np.int64)
        slots = np.arange(4, dtype=np.int64)
        sends = SendEvents(nodes, slots, np.zeros(4, dtype=np.int8))
        listens = ListenEvents(nodes, slots)
        rng = np.random.default_rng(0)
        ref = np.random.default_rng(0)
        v_sends, v_listens = _hop_batch(
            [(sends, listens)], [length], n_channels, [rng]
        )
        assert len(v_listens[0]) == 0  # all filtered
        ref.integers(0, n_channels, 4)  # only the send hop drew
        assert rng.integers(2**62) == ref.integers(2**62)

    def test_rng_stream_regression_pin(self):
        """Hard-coded results at C>1: any silent permutation of the
        hopping (or protocol/adversary) stream order shows up here."""
        mk_a = lambda: FractionJammer(0.15, max_total=2000)  # noqa: E731
        seeds = [0, 1, 2]
        batch = MCSimulator(mk_cz(), mk_a(), C, max_slots=100_000).run_batch(
            seeds, make_protocol=mk_cz, make_adversary=mk_a
        )
        assert [int(r.node_costs.sum()) for r in batch] == PIN_NODE_TOTALS
        assert [r.adversary_cost for r in batch] == PIN_ADV_COSTS
        assert [r.slots for r in batch] == PIN_SLOTS
        assert [r.phases for r in batch] == PIN_PHASES
        assert [r.stats["success"] for r in batch] == PIN_SUCCESS

    def test_factory_streams_are_name_keyed(self):
        # The three per-trial streams must come from the same named
        # factory slots the serial loop uses.
        f1, f2 = RngFactory(123), RngFactory(123)
        a = [f1.get("protocol"), f1.get("hopping"), f1.get("adversary")]
        b = [f2.get(n) for n in ("adversary", "protocol", "hopping")]
        assert a[0].integers(2**62) == b[1].integers(2**62)
        assert a[1].integers(2**62) == b[2].integers(2**62)
        assert a[2].integers(2**62) == b[0].integers(2**62)


class TestRealSlotCapSemantics:
    """Satellite: ``max_slots`` caps *real* slots (latency), not the
    ``C * length`` virtual extent the ledger charges."""

    def _first_length(self):
        p = CZParams.sim(n_nodes=16, n_channels=C)
        return 1 << p.first_epoch

    def test_cap_boundary_counts_real_slots(self):
        L0 = self._first_length()
        mk_a = lambda: ChannelBandJammer(0)  # noqa: E731
        # Cap exactly at the first phase length: under real-slot
        # semantics the first phase runs (0 + L0 <= L0) and the second
        # (doubled) phase truncates; under virtual-slot semantics
        # C * L0 > L0 would truncate immediately with zero phases.
        for runner in ("run", "run_batch"):
            sim = MCSimulator(
                mk_cz(), mk_a(), C, max_slots=L0, keep_history=True
            )
            if runner == "run":
                r = sim.run(3)
            else:
                r = list(
                    sim.run_batch(
                        [3], make_protocol=mk_cz, make_adversary=mk_a
                    )
                )[0]
            assert r.truncated
            assert r.phases == 1
            assert r.slots == L0  # real slots
            # ...while the ledger's history records the virtual extent.
            assert r.phase_history[0].length == C * L0

    def test_strict_raises_identically_in_both_paths(self):
        L0 = self._first_length()
        mk_a = lambda: ChannelBandJammer(0)  # noqa: E731
        with pytest.raises(BudgetExceededError) as serial_exc:
            MCSimulator(mk_cz(), mk_a(), C, max_slots=L0, strict=True).run(3)
        with pytest.raises(BudgetExceededError) as batch_exc:
            MCSimulator(
                mk_cz(), mk_a(), C, max_slots=L0, strict=True
            ).run_batch([3], make_protocol=mk_cz, make_adversary=mk_a)
        assert str(serial_exc.value) == str(batch_exc.value)


class TestRunBatchReuse:
    """Satellite: the no-factory deepcopy fallback must seed trials from
    pristine state, not from whatever an earlier run left behind."""

    def test_back_to_back_run_batch_bit_identical(self):
        sim = MCSimulator(
            mk_cz(), FractionJammer(0.15, max_total=2000), C,
            max_slots=100_000,
        )
        seeds = [11, 12, 13]
        first = [result_json(r) for r in sim.run_batch(seeds)]
        second = [result_json(r) for r in sim.run_batch(seeds)]
        assert first == second

    def test_run_then_run_batch_not_dirtied(self):
        mk_a = lambda: FractionJammer(0.15, max_total=2000)  # noqa: E731
        fresh = MCSimulator(mk_cz(), mk_a(), C, max_slots=100_000)
        want = [result_json(r) for r in fresh.run_batch([7, 8])]

        dirty = MCSimulator(mk_cz(), mk_a(), C, max_slots=100_000)
        dirty.run(42)  # mutates the live protocol/adversary
        got = [result_json(r) for r in dirty.run_batch([7, 8])]
        assert got == want

    def test_serial_driver_reuse_matches_too(self):
        sim = MCSimulator(
            mk_cz(), FractionJammer(0.15, max_total=2000), C,
            max_slots=100_000, protocol_driver="serial",
        )
        sim.run(42)
        a = [result_json(r) for r in sim.run_batch([1, 2])]
        b = [result_json(r) for r in sim.run_batch([1, 2])]
        assert a == b

    def test_empty_batch(self):
        sim = MCSimulator(mk_cz(), FractionJammer(0.15), C)
        out = sim.run_batch([])
        assert list(out) == []


class TestMCReplicateBatchCache:
    """Satellite: mc_replicate batch × cache interplay at C>1, mirroring
    the single-channel suite."""

    MK_A = staticmethod(lambda: FractionJammer(0.2, max_total=1500))

    def _replicate(self, n, config=None):
        return mc_replicate(
            mk_cz, self.MK_A, n, seed=9, n_channels=C,
            max_slots=50_000, config=config,
        )

    def test_batched_bit_identical(self):
        serial = self._replicate(7)
        batched = self._replicate(7, RunConfig(batch=3))
        assert [result_json(r) for r in serial] == [
            result_json(r) for r in batched
        ]

    def test_cache_interplay_mixed_hits_and_misses(self, tmp_path):
        reference = self._replicate(6)

        # Warm the store with a serial run of the first 3 replications —
        # the state a killed sweep leaves behind.
        warm = RunConfig(cache=True, cache_dir=tmp_path, experiment="TMC")
        self._replicate(3, warm)

        # A batched resume over all 6 must serve the 3 warm entries as
        # hits, batch only the missing trials, and still match serially.
        config = RunConfig(
            cache=True, cache_dir=tmp_path, batch=4, experiment="TMC"
        )
        batched = self._replicate(6, config)
        assert [result_json(r) for r in batched] == [
            result_json(r) for r in reference
        ]
        assert config.stats.cache_hits == 3
        assert config.stats.batch_trials == 3  # only the misses ran

        # Second batched run: all hits, nothing batched.
        config2 = RunConfig(
            cache=True, cache_dir=tmp_path, batch=4, experiment="TMC"
        )
        again = self._replicate(6, config2)
        assert [result_json(r) for r in again] == [
            result_json(r) for r in reference
        ]
        assert config2.stats.cache_hits == 6
        assert config2.stats.batch_tasks == 0

    def test_serial_warm_batched_resume_cross_driver(self, tmp_path):
        # Entries cached under the serial per-trial path must satisfy a
        # batched resume byte-for-byte and vice versa.
        cfg_serial = RunConfig(cache=True, cache_dir=tmp_path, experiment="TMX")
        first = self._replicate(5, cfg_serial)
        cfg_batch = RunConfig(
            cache=True, cache_dir=tmp_path, batch=2, experiment="TMX"
        )
        resumed = self._replicate(5, cfg_batch)
        assert [result_json(r) for r in first] == [
            result_json(r) for r in resumed
        ]
        assert cfg_batch.stats.cache_hits == 5
        assert cfg_batch.stats.batch_tasks == 0


# Hard-coded pins for test_rng_stream_regression_pin (C=4, CZ sim
# params, FractionJammer(0.15, max_total=2000), seeds [0, 1, 2]).
PIN_NODE_TOTALS = [1689, 2730, 1643]
PIN_ADV_COSTS = [1523, 2000, 1523]
PIN_SLOTS = [448, 960, 448]
PIN_PHASES = [3, 4, 3]
PIN_SUCCESS = [True, True, True]
