"""Property test: serial and process ``run_tasks`` are observationally
equivalent under injected faults.

The executor's contract is that backend choice is invisible to the
caller: same results, same order, same length — even when tasks time
out or workers crash and the retry machinery kicks in.  Each generated
schedule assigns every task a behaviour (``ok``, ``timeout_once``,
``crash_once``); the one-shot faults arm via flag files so the retry
succeeds, and crashes only fire inside forked workers (the serial
backend cannot survive ``os._exit``, and the contract is about what the
*caller* sees, which for serial is the ordinary exception path).
"""

from __future__ import annotations

import os
import tempfile
import time
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine.executor import run_tasks

pytestmark = [
    pytest.mark.parallel,
    pytest.mark.skipif(not hasattr(os, "fork"), reason="needs os.fork"),
]

MAIN_PID = os.getpid()
TIMEOUT = 0.25

behaviours = st.lists(
    st.sampled_from(["ok", "timeout_once", "crash_once"]),
    min_size=1,
    max_size=5,
)


def make_task(i: int, behaviour: str, flags: Path):
    flag = flags / str(i)

    def task():
        if behaviour == "timeout_once" and not flag.exists():
            flag.touch()
            time.sleep(30)  # parent (or alarm) enforces TIMEOUT
        if (
            behaviour == "crash_once"
            and os.getpid() != MAIN_PID
            and not flag.exists()
        ):
            flag.touch()
            os._exit(23)  # hard worker death, as a segfault would be
        return ("result", i)

    return task


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(schedule=behaviours)
def test_serial_and_process_agree_under_faults(schedule):
    expected = [("result", i) for i in range(len(schedule))]
    outcomes = {}
    for backend_jobs in (1, 2):
        flags = Path(tempfile.mkdtemp(prefix="exec-equiv-"))
        tasks = [make_task(i, b, flags) for i, b in enumerate(schedule)]
        outcomes[backend_jobs] = run_tasks(
            tasks, jobs=backend_jobs, timeout=TIMEOUT, retries=2
        )
    assert outcomes[1] == expected
    assert outcomes[2] == expected
    assert len(outcomes[1]) == len(outcomes[2]) == len(schedule)
