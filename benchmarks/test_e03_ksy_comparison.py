"""Benchmark E3: Figure 1 vs the KSY baseline vs deterministic sending (Section 1.4 comparison).

Regenerates the experiment's table (quick mode) and asserts its
claim-checks; see src/repro/experiments/e03_ksy_comparison.py for the full
workload description and EXPERIMENTS.md for recorded full-mode output.
"""


def test_e03(run_quick):
    run_quick("E3")
