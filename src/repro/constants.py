"""Mathematical constants and paper-wide definitions.

Centralises every number the paper uses symbolically (the golden ratio,
the Figure 1/Figure 2 constants) so that protocol code and tests share a
single source of truth.
"""

from __future__ import annotations

import math

#: Golden ratio, ``(1 + sqrt(5)) / 2``.  Theorem 5 proves a lower bound of
#: ``Omega(T**(PHI - 1))`` for 1-to-1 communication under a spoofing
#: adversary; the KSY (PODC 2011) algorithm matches it.
PHI: float = (1.0 + math.sqrt(5.0)) / 2.0

#: ``PHI - 1 = 1/PHI`` — the exponent in Theorem 5 and in the KSY
#: baseline's cost, approximately ``0.618``.
PHI_MINUS_1: float = PHI - 1.0

#: ``(PHI - 1)**2 = 2 - PHI`` — the sender-side exponent of the KSY
#: baseline.  Satisfies ``x**2 = 1 - x`` with ``x = PHI - 1``, which is
#: the identity that makes the sender/listener budgets multiply out to a
#: full window (see ``repro.protocols.ksy``).
PHI_MINUS_1_SQ: float = PHI_MINUS_1**2

#: Figure 1's first epoch index is ``11 + lg ln(8/eps)``.  This is the
#: additive constant.
FIG1_FIRST_EPOCH_OFFSET: int = 11

#: Figure 1's error-budget denominator: the analysis splits the failure
#: probability ``eps`` into pieces of size ``eps/8``.
FIG1_EPS_DENOM: int = 8

#: Figure 1's halting threshold divisor: a party halts only after hearing
#: fewer than ``sqrt(2**(i-1) * ln(8/eps)) / 4`` jammed slots.
FIG1_JAM_THRESHOLD_DIV: int = 4

#: Figure 2's initial sending-rate value (``S_u <- 16``).
FIG2_S_INIT: float = 16.0

#: Figure 2's global termination constant (Case 1: ``S_u > 360 * 2**(i/2)``).
FIG2_TERM_GLOBAL: float = 360.0

#: Figure 2's helper termination constant (Case 4:
#: ``S_u >= 360 * sqrt(2**i / n_u)``).
FIG2_TERM_HELPER: float = 360.0

#: Figure 2's helper-promotion divisor (Case 3: heard ``m`` more than
#: ``d * i**3 / 200`` times).
FIG2_HELPER_DIV: float = 200.0

#: Figure 2's clear-slot baseline: ``C'_u = max(0, C_u - S_u*d*i**3 / 2)``.
FIG2_CLEAR_BASELINE_FRAC: float = 0.5

#: Lower bounds on Figure 2's tuning constants proved sufficient in the
#: paper's analysis (Lemma 9 needs ``d > 79.2``; the termination argument
#: needs ``b >= 10``).
FIG2_MIN_B: float = 10.0
FIG2_MIN_D: float = 79.2


def lg(x: float) -> float:
    """Base-2 logarithm, the paper's ``lg``."""
    if x <= 0:
        raise ValueError(f"lg requires a positive argument, got {x!r}")
    return math.log2(x)


def fig1_first_epoch(epsilon: float) -> int:
    """First epoch index of Figure 1: ``ceil(11 + lg ln(8/eps))``.

    Parameters
    ----------
    epsilon:
        The tunable failure probability ``eps`` in ``(0, 1)``.
    """
    if not 0.0 < epsilon < 1.0:
        raise ValueError(f"epsilon must be in (0, 1), got {epsilon!r}")
    return FIG1_FIRST_EPOCH_OFFSET + math.ceil(lg(math.log(FIG1_EPS_DENOM / epsilon)))


def fig1_send_probability(epoch: int, epsilon: float) -> float:
    """Per-slot send/listen probability of Figure 1's epoch ``i``.

    The Theorem 1 proof sets ``p_i = sqrt(ln(8/eps) / 2**(i-1))``,
    clamped here to 1 for tiny epochs so scaled-down presets stay valid.
    """
    if not 0.0 < epsilon < 1.0:
        raise ValueError(f"epsilon must be in (0, 1), got {epsilon!r}")
    p = math.sqrt(math.log(FIG1_EPS_DENOM / epsilon) / 2.0 ** (epoch - 1))
    return min(1.0, p)


def fig1_jam_threshold(epoch: int, epsilon: float) -> float:
    """Figure 1's heard-jam halting threshold for epoch ``i``.

    A party that heard at least ``sqrt(2**(i-1) * ln(8/eps)) / 4`` jammed
    slots in a phase concludes the adversary is active and keeps running.
    """
    if not 0.0 < epsilon < 1.0:
        raise ValueError(f"epsilon must be in (0, 1), got {epsilon!r}")
    return (
        math.sqrt(2.0 ** (epoch - 1) * math.log(FIG1_EPS_DENOM / epsilon))
        / FIG1_JAM_THRESHOLD_DIV
    )
