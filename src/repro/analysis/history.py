"""Aggregation of per-phase cost history.

``Simulator(..., keep_history=True)`` records a
:class:`~repro.channel.accounting.PhaseCost` per phase, tagged with the
protocol's metadata (epoch, phase kind, repetition).  These helpers
roll that stream up into per-epoch / per-kind breakdowns — the raw
material for "where did the energy go?" questions like the Theorem 1
proof's per-epoch cost sums.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.channel.accounting import PhaseCost
from repro.errors import AnalysisError

__all__ = ["EpochBreakdown", "by_epoch", "by_tag", "cumulative_costs"]


@dataclass(frozen=True)
class EpochBreakdown:
    """Aggregated costs of all phases sharing one epoch index."""

    epoch: int
    n_phases: int
    slots: int
    node_total: int
    adversary: int

    @property
    def jam_fraction(self) -> float:
        """Adversary slots spent per channel slot in this epoch."""
        return self.adversary / self.slots if self.slots else 0.0


def by_epoch(history: Sequence[PhaseCost]) -> list[EpochBreakdown]:
    """Group a phase-cost stream by its ``"epoch"`` tag (sorted).

    Phases without an epoch tag are grouped under epoch ``-1``.
    """
    if history is None:
        raise AnalysisError("history is None — run with keep_history=True")
    groups: dict[int, list[PhaseCost]] = {}
    for p in history:
        groups.setdefault(int(p.tags.get("epoch", -1)), []).append(p)
    return [
        EpochBreakdown(
            epoch=epoch,
            n_phases=len(ps),
            slots=sum(p.length for p in ps),
            node_total=sum(p.node_total for p in ps),
            adversary=sum(p.adversary for p in ps),
        )
        for epoch, ps in sorted(groups.items())
    ]


def by_tag(history: Sequence[PhaseCost], tag: str) -> dict:
    """Sum node and adversary costs per value of an arbitrary tag."""
    if history is None:
        raise AnalysisError("history is None — run with keep_history=True")
    out: dict = {}
    for p in history:
        key = p.tags.get(tag)
        node, adv = out.get(key, (0, 0))
        out[key] = (node + p.node_total, adv + p.adversary)
    return out


def cumulative_costs(
    history: Sequence[PhaseCost],
) -> tuple[list[int], list[int], list[int]]:
    """Slot-indexed cumulative (slots, node_total, adversary) series.

    Useful for plotting the energy race between the parties over time.
    """
    slots, nodes, adv = [], [], []
    s = n = a = 0
    for p in history:
        s += p.length
        n += p.node_total
        a += p.adversary
        slots.append(s)
        nodes.append(n)
        adv.append(a)
    return slots, nodes, adv
