"""Unit tests for the Section 1.4 related-work stand-ins."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adversaries.basic import SilentAdversary
from repro.adversaries.blocking import EpochTargetJammer
from repro.adversaries.suppressor import BroadcastSuppressor
from repro.engine.simulator import Simulator, run
from repro.errors import ConfigurationError
from repro.protocols.related import (
    GilbertYoungStyleBroadcast,
    KSYStyleBroadcast,
    RelatedParams,
)


class TestParams:
    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            RelatedParams(c=0)
        with pytest.raises(ConfigurationError):
            RelatedParams(first_epoch=10, max_epoch=9)

    def test_min_n(self):
        with pytest.raises(ConfigurationError):
            KSYStyleBroadcast(1)
        with pytest.raises(ConfigurationError):
            GilbertYoungStyleBroadcast(1)


class TestKSYStyleBroadcast:
    def test_silent_success_cheap(self):
        res = run(KSYStyleBroadcast(16), SilentAdversary(), seed=0)
        assert res.success
        assert res.max_node_cost < 500

    def test_cost_grows_with_n_under_blocking(self):
        costs = {}
        for n in (8, 128):
            res = Simulator(
                KSYStyleBroadcast(n),
                EpochTargetJammer(11, q=1.0),
                max_slots=40_000_000,
            ).run(1)
            assert res.success
            costs[n] = res.node_costs[1:].mean()  # receivers
        assert costs[128] > costs[8]

    def test_listening_inflated_by_log_n(self):
        # Start high enough that the ln(n)-inflated rate is unsaturated.
        params = RelatedParams(first_epoch=16)
        p_small = KSYStyleBroadcast(8, params)
        p_big = KSYStyleBroadcast(1024, params)
        p_small.reset(np.random.default_rng(0))
        p_big.reset(np.random.default_rng(0))
        s_small = p_small.next_phase()
        s_big = p_big.next_phase()
        assert 0 < s_small.listen_probs[1] < s_big.listen_probs[1] < 1

    def test_source_sends_receivers_listen(self):
        proto = KSYStyleBroadcast(8)
        proto.reset(np.random.default_rng(0))
        spec = proto.next_phase()
        assert spec.send_probs[0] > 0
        assert (spec.send_probs[1:] == 0).all()
        assert (spec.listen_probs[1:] > 0).all()


class TestGilbertYoungStyleBroadcast:
    def test_silent_success(self):
        res = run(GilbertYoungStyleBroadcast(16), SilentAdversary(), seed=0)
        assert res.success
        assert res.stats["informed_fraction"] == 1.0

    def test_cheaper_than_fig2_when_idle(self):
        from repro.protocols.one_to_n import OneToNBroadcast

        gy = run(GilbertYoungStyleBroadcast(32), SilentAdversary(), seed=1)
        fig2 = run(OneToNBroadcast(32), SilentAdversary(), seed=1)
        assert gy.node_costs.mean() < fig2.node_costs.mean() / 10

    def test_uses_ideal_rate_immediately(self):
        proto = GilbertYoungStyleBroadcast(16)
        proto.reset(np.random.default_rng(0))
        spec = proto.next_phase()
        L = spec.length
        ideal = np.sqrt(L / 16)
        assert spec.send_probs[0] == pytest.approx(ideal / L)

    def test_suppressor_causes_partial_coverage(self):
        res = Simulator(
            GilbertYoungStyleBroadcast(64),
            BroadcastSuppressor(max_total=30_000),
            max_slots=40_000_000,
        ).run(2)
        assert res.stats["informed_fraction"] < 0.9
        assert not res.truncated  # Monte Carlo halting fired

    def test_rides_out_loud_jamming(self):
        # Audible jamming postpones the quiet-epoch counter, so heavy
        # blocking delays but does not strand the broadcast.
        res = Simulator(
            GilbertYoungStyleBroadcast(16),
            EpochTargetJammer(10, q=1.0),
            max_slots=40_000_000,
        ).run(3)
        assert res.success
