"""Benchmark E8: unjammed broadcast costs polylog(n) and finishes in ~n slots (Theorem 3, T=0).

Regenerates the experiment's table (quick mode) and asserts its
claim-checks; see src/repro/experiments/e08_broadcast_unjammed.py for the full
workload description and EXPERIMENTS.md for recorded full-mode output.
"""


def test_e08(run_quick):
    run_quick("E8")
