"""Unit tests for the Bernoulli-process slot sampler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.events import TxKind
from repro.engine.sampling import (
    DENSE_P_THRESHOLD,
    bernoulli_positions,
    sample_action_events,
)
from repro.errors import SimulationError


class TestBernoulliPositions:
    def test_zero_probability(self, rng):
        assert len(bernoulli_positions(rng, 1000, 0.0)) == 0

    def test_probability_one(self, rng):
        pos = bernoulli_positions(rng, 17, 1.0)
        assert list(pos) == list(range(17))

    def test_zero_length(self, rng):
        assert len(bernoulli_positions(rng, 0, 0.5)) == 0

    def test_invalid_probability(self, rng):
        with pytest.raises(SimulationError):
            bernoulli_positions(rng, 10, 1.5)
        with pytest.raises(SimulationError):
            bernoulli_positions(rng, 10, -0.1)

    def test_negative_length(self, rng):
        with pytest.raises(SimulationError):
            bernoulli_positions(rng, -1, 0.5)

    def test_positions_sorted_distinct_in_range(self, rng):
        for p in (0.001, 0.05, 0.3, 0.9):
            pos = bernoulli_positions(rng, 5000, p)
            assert (np.diff(pos) > 0).all()
            if len(pos):
                assert pos[0] >= 0 and pos[-1] < 5000

    def test_mean_count_matches_binomial(self, rng):
        # Skip-sampling path (p below the dense threshold).
        L, p, reps = 2000, 0.01, 400
        counts = [len(bernoulli_positions(rng, L, p)) for _ in range(reps)]
        mean = np.mean(counts)
        se = np.sqrt(L * p * (1 - p) / reps)
        assert abs(mean - L * p) < 5 * se

    def test_mean_count_dense_path(self, rng):
        L, p, reps = 500, 0.4, 400
        assert p >= DENSE_P_THRESHOLD
        counts = [len(bernoulli_positions(rng, L, p)) for _ in range(reps)]
        mean = np.mean(counts)
        se = np.sqrt(L * p * (1 - p) / reps)
        assert abs(mean - L * p) < 5 * se

    def test_positions_uniform(self, rng):
        # Pool positions over many draws; each slot should be hit
        # approximately equally often (chi-square-ish tolerance).
        L, p, reps = 50, 0.1, 2000
        hits = np.zeros(L)
        for _ in range(reps):
            hits[bernoulli_positions(rng, L, p)] += 1
        expected = reps * p
        # ~normal with sd sqrt(expected); allow 5 sigma per bin.
        assert (np.abs(hits - expected) < 5 * np.sqrt(expected)).all()

    def test_deterministic_given_seed(self):
        a = bernoulli_positions(np.random.default_rng(7), 1000, 0.02)
        b = bernoulli_positions(np.random.default_rng(7), 1000, 0.02)
        assert np.array_equal(a, b)

    def test_tail_beyond_length_truncated(self, rng):
        # Large p via the skip path: force by monkeypatching threshold?
        # Simpler: low p but tiny length — positions must stay in range.
        for _ in range(50):
            pos = bernoulli_positions(rng, 3, 0.15)
            assert (pos < 3).all()


class TestSampleActionEvents:
    def test_shapes_and_kinds(self, rng):
        sends, listens = sample_action_events(
            rng, 100,
            send_probs=np.array([0.2, 0.0]),
            send_kinds=np.array([TxKind.DATA, TxKind.NOISE], dtype=np.int8),
            listen_probs=np.array([0.0, 0.3]),
        )
        assert (sends.nodes == 0).all()
        assert (sends.kinds == TxKind.DATA).all()
        assert (listens.nodes == 1).all()

    def test_empty(self, rng):
        sends, listens = sample_action_events(
            rng, 10, np.zeros(3), np.ones(3, dtype=np.int8), np.zeros(3)
        )
        assert len(sends) == 0 and len(listens) == 0

    def test_length_mismatch(self, rng):
        with pytest.raises(SimulationError):
            sample_action_events(
                rng, 10, np.zeros(3), np.ones(2, dtype=np.int8), np.zeros(3)
            )

    def test_probability_out_of_range(self, rng):
        with pytest.raises(SimulationError):
            sample_action_events(
                rng, 10, np.array([1.2]), np.ones(1, dtype=np.int8), np.zeros(1)
            )

    def test_per_node_rates(self, rng):
        n, L, reps = 3, 400, 60
        probs = np.array([0.01, 0.1, 0.5])
        totals = np.zeros(n)
        for _ in range(reps):
            sends, _ = sample_action_events(
                rng, L, probs, np.full(n, TxKind.DATA, dtype=np.int8), np.zeros(n)
            )
            totals += np.bincount(sends.nodes, minlength=n)
        means = totals / reps
        for u in range(n):
            se = np.sqrt(L * probs[u] * (1 - probs[u]) / reps)
            assert abs(means[u] - L * probs[u]) < 5 * se
