"""Slotted single-hop wireless channel substrate.

Implements the network model of Section 1.2 of the paper:

* time is divided into discrete slots;
* a node pays 1 unit of energy per slot it sends or listens, 0 when
  asleep;
* when two or more transmissions (including adversarial spoofs) land in
  one slot they collide and listeners hear only noise;
* a jammed slot is heard as noise; via clear-channel assessment a
  listener can distinguish *clear* / *noise* / a successfully decoded
  message, but cannot tell jamming noise from collision noise;
* an ``l``-uniform adversary may give each of up to ``l`` node groups a
  different jamming schedule, paying 1 unit per (group, slot) jammed —
  or 1 unit per slot for a channel-wide ("global") jam.
"""

from repro.channel.events import (
    JamPlan,
    ListenEvents,
    PhaseOutcome,
    SendEvents,
    SlotSet,
    SlotStatus,
    TxKind,
)
from repro.channel.model import get_resolver, resolve_phase
from repro.channel.model_dense import resolve_phase_dense
from repro.channel.accounting import EnergyLedger, PhaseCost

__all__ = [
    "EnergyLedger",
    "JamPlan",
    "ListenEvents",
    "PhaseCost",
    "PhaseOutcome",
    "SendEvents",
    "SlotSet",
    "SlotStatus",
    "TxKind",
    "get_resolver",
    "resolve_phase",
    "resolve_phase_dense",
]
