"""Multichannel run loop via the virtual-slot reduction.

A phase of ``L`` slots over ``C`` channels is resolved as a
single-channel phase of ``C * L`` virtual slots, where real slot ``t``
on channel ``c`` is virtual slot ``c * L + t``:

* a transmission/listen in real slot ``t`` is placed on one uniformly
  random channel, i.e. mapped to virtual slot ``rng.integers(C) * L + t``;
* collisions happen exactly within (channel, slot) cells;
* the adversary's plan is a set of (channel, slot) cells (1 energy
  each), i.e. an ordinary :class:`~repro.channel.events.JamPlan` over
  the virtual slots.

Because a node takes at most one action per *real* slot and each action
occupies exactly one virtual slot, per-slot energy accounting, the
half-duplex rule, and the own-transmission exclusion all carry over
from the single-channel resolver untouched — the reduction is exact,
not an approximation.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

import numpy as np

from repro.channel.accounting import BatchEnergyLedger, EnergyLedger
from repro.channel.events import N_STATUS, JamPlan, ListenEvents, SendEvents
from repro.channel.model import (
    BatchPhaseOutcome,
    get_resolver,
    resolve_phase_batch_core,
    resolve_phase_dense,
    resolve_resolver_name,
)
from repro.engine.phase import BatchPhaseObservation, PhaseObservation
from repro.engine.sampling import sample_action_events, sample_action_events_batch
from repro.engine.simulator import (
    BatchResult,
    RunResult,
    resolve_protocol_driver_name,
)
from repro.errors import BudgetExceededError, ConfigurationError, ProtocolError
from repro.multichannel.adversaries import MCAdversary, MCContext
from repro.protocols.base import Protocol
from repro.rng import RngFactory

__all__ = ["MCSimulator", "mc_run"]


def _hop(events_slots: np.ndarray, length: int, n_channels: int,
         rng: np.random.Generator) -> np.ndarray:
    """Map real-slot events to virtual slots via uniform channel hops.

    With one channel there is nothing to hop: real and virtual slots
    coincide and *no* rng is consumed, so an ``MCSimulator`` at C=1
    consumes exactly the same random streams as
    :class:`~repro.engine.simulator.Simulator` and the two engines are
    bit-identical on identical seeds (the C=1 differential test pins
    this).
    """
    if len(events_slots) == 0 or n_channels == 1:
        return events_slots
    channels = rng.integers(0, n_channels, len(events_slots))
    return channels * length + events_slots


def _half_duplex(sends: SendEvents, listens: ListenEvents,
                 length: int) -> ListenEvents:
    """Drop listens that collide with the same node's sends in the same
    *real* slot.

    Half-duplex must be enforced before the hop: a node cannot send on
    one channel while listening on another.  (The virtual-slot resolver
    would only catch same-channel conflicts.)  Shared by :meth:`run` and
    the lockstep batch driver so both paths filter identically.
    """
    if not len(sends) or not len(listens):
        return listens
    send_keys = np.sort(sends.nodes * length + sends.slots)
    listen_keys = listens.nodes * length + listens.slots
    pos = np.searchsorted(send_keys, listen_keys)
    safe = np.minimum(pos, len(send_keys) - 1)
    keep = send_keys[safe] != listen_keys
    return ListenEvents(listens.nodes[keep], listens.slots[keep])


def _hop_batch(events, lengths, n_channels: int, rngs):
    """Filter and hop a batch of trials' events onto virtual slots.

    ``events[i]`` is trial ``i``'s ``(sends, listens)`` pair on real
    slots, ``lengths[i]`` its phase length and ``rngs[i]`` its private
    ``hopping`` stream.  Per trial the call sequence is exactly serial
    :meth:`MCSimulator.run`'s: the half-duplex filter runs on real
    slots first (it changes how many listen events remain, hence how
    many channel draws the hop makes), then sends hop, then listens —
    both from that trial's stream, in that order.  Cross-trial order is
    free (streams are independent), but the per-trial draw order is the
    bit-identity contract the C>1 rng regression pin enforces; merging
    the two hops into one draw, or hopping listens before the filter,
    would silently permute every stream.
    """
    v_sends: list[SendEvents] = []
    v_listens: list[ListenEvents] = []
    for (sends, listens), length, rng in zip(events, lengths, rngs):
        length = int(length)
        listens = _half_duplex(sends, listens, length)
        v_sends.append(SendEvents(
            sends.nodes,
            _hop(sends.slots, length, n_channels, rng),
            sends.kinds,
        ))
        v_listens.append(ListenEvents(
            listens.nodes,
            _hop(listens.slots, length, n_channels, rng),
        ))
    return v_sends, v_listens


class MCSimulator:
    """Run any protocol on a ``C``-channel medium.

    Parameters
    ----------
    protocol:
        Any phase-driven protocol; it needs no channel awareness.
    adversary:
        An :class:`~repro.multichannel.adversaries.MCAdversary`.
    n_channels:
        Number of frequency channels ``C >= 1``.
    max_slots:
        Safety cap on *real* slots — the sum of phase lengths, i.e.
        wall-clock latency.  Latency does not grow with band width, so
        the cap is deliberately ``C``-invariant even though the ledger's
        per-phase records charge the ``C * length`` virtual extent (an
        accounting convention, not elapsed time).  ``run`` and
        ``run_batch`` apply the cap identically: a phase that would
        push a trial past either cap is not started; with
        ``strict=True`` a :class:`~repro.errors.BudgetExceededError`
        is raised instead of truncating.
    max_phases:
        Safety cap on the number of phases, same semantics.
    resolver:
        Resolver selection, as in
        :class:`~repro.engine.simulator.Simulator`: ``"sparse"``
        (default), ``"dense"`` for the O(L) oracle, ``None`` defers to
        the ``REPRO_RESOLVER`` environment variable.
    dense:
        Deprecated boolean spelling of ``resolver=`` (one-release
        :class:`DeprecationWarning`).
    protocol_driver:
        How :meth:`run_batch` steps protocols, as in
        :class:`~repro.engine.simulator.Simulator`: ``"batch"``
        (stacked lockstep kernel, the default) or ``"serial"`` (one
        fresh engine per trial — the differential oracle); ``None``
        defers to the ``REPRO_PROTOCOL_DRIVER`` environment variable.
    """

    def __init__(
        self,
        protocol: Protocol,
        adversary: MCAdversary,
        n_channels: int,
        *,
        max_slots: int = 50_000_000,
        max_phases: int = 200_000,
        strict: bool = False,
        keep_history: bool = False,
        resolver: str | None = None,
        dense: bool | None = None,
        protocol_driver: str | None = None,
    ) -> None:
        if n_channels < 1:
            raise ConfigurationError(f"n_channels must be >= 1, got {n_channels}")
        declared = getattr(getattr(protocol, "params", None), "n_channels", None)
        if declared is not None and declared != n_channels:
            raise ConfigurationError(
                f"protocol is tuned for {declared} channels but the engine "
                f"was given n_channels={n_channels}"
            )
        self.protocol = protocol
        self.adversary = adversary
        self.n_channels = n_channels
        self.max_slots = max_slots
        self.max_phases = max_phases
        self.strict = strict
        self.keep_history = keep_history
        self.resolver = resolve_resolver_name(resolver, dense=dense)
        self.resolve_phase = get_resolver(self.resolver)
        self.protocol_driver = resolve_protocol_driver_name(protocol_driver)
        # Pristine snapshots for run_batch's no-factory fallback: the
        # live protocol/adversary may have been mutated by an earlier
        # run()/run_batch(), and deep-copying dirty state would seed
        # every trial from wherever the last run halted.
        self._pristine_protocol = copy.deepcopy(protocol)
        self._pristine_adversary = copy.deepcopy(adversary)

    def run(self, seed: int | np.random.Generator | None = None) -> RunResult:
        factory = RngFactory(seed)
        protocol_rng = factory.get("protocol")
        hop_rng = factory.get("hopping")
        adversary_rng = factory.get("adversary")

        protocol = self.protocol
        protocol.reset(protocol_rng)
        self.adversary.begin_run(protocol.n_nodes, self.n_channels, adversary_rng)

        ledger = EnergyLedger(protocol.n_nodes, keep_history=self.keep_history)
        slots = 0
        phases = 0
        truncated = False
        C = self.n_channels

        while (spec := protocol.next_phase()) is not None:
            if slots + spec.length > self.max_slots or phases >= self.max_phases:
                if self.strict:
                    raise BudgetExceededError(
                        f"run exceeded caps (slots={slots}, phases={phases})"
                    )
                truncated = True
                break
            # Jam groups are a single-channel concept (jamming "near a
            # node"); in the multichannel model the adversary buys
            # (channel, slot) cells that disrupt every listener hopping
            # onto them, so any group annotations are ignored.

            sends, listens = sample_action_events(
                protocol_rng, spec.length, spec.send_probs, spec.send_kinds,
                spec.listen_probs,
            )
            listens = _half_duplex(sends, listens, spec.length)
            v_sends = SendEvents(
                sends.nodes,
                _hop(sends.slots, spec.length, C, hop_rng),
                sends.kinds,
            )
            v_listens = ListenEvents(
                listens.nodes, _hop(listens.slots, spec.length, C, hop_rng)
            )

            ctx = MCContext(
                phase_index=phases,
                length=spec.length,
                n_channels=C,
                n_nodes=protocol.n_nodes,
                tags=dict(spec.tags),
                sends=v_sends,
                listens=v_listens,
                spent=ledger.adversary_cost,
            )
            plan = self.adversary.plan_phase(ctx)
            if plan.length != C * spec.length:
                raise ProtocolError(
                    f"MC plan must cover {C}x{spec.length} virtual slots, "
                    f"got {plan.length}"
                )
            outcome = self.resolve_phase(
                C * spec.length, protocol.n_nodes, v_sends, v_listens, plan
            )
            ledger.charge_phase(
                C * spec.length,
                outcome.send_cost + outcome.listen_cost,
                outcome.adversary_cost,
                tags=spec.tags,
                send_costs=outcome.send_cost,
                listen_costs=outcome.listen_cost,
            )
            slots += spec.length
            phases += 1
            protocol.observe(
                PhaseObservation(
                    length=spec.length,
                    heard=outcome.heard,
                    send_cost=outcome.send_cost,
                    listen_cost=outcome.listen_cost,
                    tags=dict(spec.tags),
                )
            )

        if not truncated and not protocol.done:
            raise ProtocolError("protocol returned no phase but reports not done")
        ledger.check_conservation()
        return RunResult(
            node_costs=ledger.node_costs,
            adversary_cost=ledger.adversary_cost,
            slots=slots,
            phases=phases,
            truncated=truncated,
            stats=protocol.summary(),
            phase_history=ledger.history,
            node_send_costs=ledger.send_costs,
            node_listen_costs=ledger.listen_costs,
        )

    def run_batch(
        self,
        seeds,
        *,
        make_protocol=None,
        make_adversary=None,
    ) -> BatchResult:
        """Play B independent multichannel trials in lockstep.

        Same surface and contract as
        :meth:`repro.engine.simulator.Simulator.run_batch`, so callers
        can treat single- and multi-channel engines uniformly: trial
        ``t`` is bit-identical to ``run(seeds[t])`` on fresh instances.
        Without factories, trials are seeded from deep copies of the
        protocol/adversary *as constructed* — never from state a
        previous ``run``/``run_batch`` on this engine left behind — so
        back-to-back calls on one engine are bit-identical too.

        The driver is selected by ``protocol_driver``: ``"batch"``
        (default) advances all trials together through the stacked
        kernel; ``"serial"`` plays them one at a time on fresh engines
        and is kept as the differential oracle.
        """
        seeds = list(seeds)
        if not seeds:
            return BatchResult(results=(), seeds=())
        if self.protocol_driver == "serial":
            return self._run_batch_serial(seeds, make_protocol, make_adversary)
        return self._run_batch_lockstep(seeds, make_protocol, make_adversary)

    def _run_batch_serial(
        self, seeds: list, make_protocol, make_adversary
    ) -> BatchResult:
        """Per-trial loop on fresh engines — the lockstep differential
        oracle."""
        results = []
        for seed in seeds:
            sim = MCSimulator(
                make_protocol() if make_protocol is not None
                else copy.deepcopy(self._pristine_protocol),
                make_adversary() if make_adversary is not None
                else copy.deepcopy(self._pristine_adversary),
                self.n_channels,
                max_slots=self.max_slots,
                max_phases=self.max_phases,
                strict=self.strict,
                keep_history=self.keep_history,
                resolver=self.resolver,
                protocol_driver=self.protocol_driver,
            )
            results.append(sim.run(seed))
        return BatchResult(results=tuple(results), seeds=tuple(seeds))

    def _run_batch_lockstep(
        self, seeds: list, make_protocol, make_adversary
    ) -> BatchResult:
        """Stacked lockstep driver for the virtual-slot reduction.

        The structure mirrors
        :meth:`repro.engine.simulator.Simulator._run_batch_lockstep`
        (stacked protocol state, one :class:`BatchEnergyLedger`, masked
        — never compacted — halted trials) with the two multichannel
        deltas: every trial owns a third rng stream (``hopping``) whose
        draws :func:`_hop_batch` consumes in serial order, and plans
        come from :meth:`MCAdversary.plan_phase_batch` over the
        ``C * length`` virtual slots.  The ledger charges the virtual
        extent per phase while the slot counters advance by *real*
        slots, exactly as :meth:`run` does (see the ``max_slots``
        docs).
        """
        B = len(seeds)
        C = self.n_channels
        protocol = (
            make_protocol() if make_protocol is not None
            else copy.deepcopy(self._pristine_protocol)
        )
        adversaries = [
            make_adversary() if make_adversary is not None
            else copy.deepcopy(self._pristine_adversary)
            for _ in range(B)
        ]
        n_nodes = protocol.n_nodes
        adv_type = type(adversaries[0])
        if any(type(a) is not adv_type for a in adversaries):
            adv_type = MCAdversary  # heterogeneous batch: per-trial loop

        factories = [RngFactory(seed) for seed in seeds]
        protocol_rngs = [f.get("protocol") for f in factories]
        hop_rngs = [f.get("hopping") for f in factories]
        adversary_rngs = [f.get("adversary") for f in factories]

        ledger = BatchEnergyLedger(B, n_nodes, keep_history=self.keep_history)
        slots = np.zeros(B, dtype=np.int64)
        phases = np.zeros(B, dtype=np.int64)
        truncated = np.zeros(B, dtype=bool)

        protocol.reset_batch(protocol_rngs)
        for t in range(B):
            adversaries[t].begin_run(n_nodes, C, adversary_rngs[t])
        spec = protocol.next_phase_batch(np.ones(B, dtype=bool))

        while spec is not None:
            if spec.n_nodes != n_nodes:
                raise ProtocolError(
                    f"phase for {spec.n_nodes} nodes from a protocol "
                    f"with {n_nodes}"
                )
            runnable = spec.active & ~truncated
            over = runnable & (
                (slots + spec.lengths > self.max_slots)
                | (phases >= self.max_phases)
            )
            if over.any():
                if self.strict:
                    t = int(np.flatnonzero(over)[0])
                    raise BudgetExceededError(
                        f"run exceeded caps (slots={int(slots[t])}, "
                        f"phases={int(phases[t])})"
                    )
                truncated |= over
                runnable &= ~over
            if not runnable.any():
                break
            idx = np.flatnonzero(runnable)

            full = len(idx) == B
            events = sample_action_events_batch(
                protocol_rngs if full else [protocol_rngs[t] for t in idx],
                spec.lengths if full else spec.lengths[idx],
                spec.send_probs if full else spec.send_probs[idx],
                spec.send_kinds if full else spec.send_kinds[idx],
                spec.listen_probs if full else spec.listen_probs[idx],
                validate=False,
            )
            v_sends, v_listens = _hop_batch(
                events,
                spec.lengths if full else spec.lengths[idx],
                C,
                hop_rngs if full else [hop_rngs[t] for t in idx],
            )

            adv_spent = ledger.adversary_costs
            ctxs = [
                MCContext(
                    phase_index=int(phases[t]),
                    length=int(spec.lengths[t]),
                    n_channels=C,
                    n_nodes=n_nodes,
                    tags=dict(spec.tags[t]),
                    sends=v_sends[i],
                    listens=v_listens[i],
                    spent=int(adv_spent[t]),
                )
                for i, t in enumerate(idx)
            ]
            plans = adv_type.plan_phase_batch(
                [adversaries[t] for t in idx], ctxs
            )
            for i, t in enumerate(idx):
                if plans[i].length != C * int(spec.lengths[t]):
                    raise ProtocolError(
                        f"MC plan must cover {C}x{int(spec.lengths[t])} "
                        f"virtual slots, got {plans[i].length}"
                    )
            # Jam groups are a single-channel concept; as in run(), any
            # group annotations are ignored on the virtual slots.
            if self.resolver == "dense":
                core = BatchPhaseOutcome.from_outcomes([
                    resolve_phase_dense(
                        C * int(spec.lengths[t]), n_nodes,
                        v_sends[i], v_listens[i], plans[i],
                    )
                    for i, t in enumerate(idx)
                ])
            else:
                core = resolve_phase_batch_core(
                    C * (spec.lengths if full else spec.lengths[idx]),
                    n_nodes,
                    v_sends,
                    v_listens,
                    plans,
                    [None] * len(idx),
                    validate=False,
                )

            if full:
                heard_full = core.heard
                send_full = core.send_cost
                listen_full = core.listen_cost
                advc_full = core.adversary_costs
            else:
                heard_full = np.zeros((B, n_nodes, N_STATUS), dtype=np.int64)
                send_full = np.zeros((B, n_nodes), dtype=np.int64)
                listen_full = np.zeros((B, n_nodes), dtype=np.int64)
                advc_full = np.zeros(B, dtype=np.int64)
                heard_full[idx] = core.heard
                send_full[idx] = core.send_cost
                listen_full[idx] = core.listen_cost
                advc_full[idx] = core.adversary_costs

            # Virtual extent in the ledger, real slots on the latency
            # counter — the same split as the serial loop.
            ledger.charge_phase_batch(
                runnable, C * spec.lengths, send_full, listen_full,
                advc_full, spec.tags,
            )
            slots[runnable] += spec.lengths[runnable]
            phases[runnable] += 1

            protocol.observe_batch(
                BatchPhaseObservation(
                    lengths=spec.lengths,
                    heard=heard_full,
                    send_cost=send_full,
                    listen_cost=listen_full,
                    active=runnable,
                    tags=spec.tags,
                )
            )
            spec = protocol.next_phase_batch(runnable)

        bad = ~protocol.done_batch() & ~truncated
        if bad.any():
            raise ProtocolError(
                "protocol returned no phase but reports not done"
            )
        ledger.check_conservation()
        stats = protocol.summary_batch()
        results = [
            RunResult(
                node_costs=ledger.node_costs_for(t),
                adversary_cost=ledger.adversary_cost(t),
                slots=int(slots[t]),
                phases=int(phases[t]),
                truncated=bool(truncated[t]),
                stats=stats[t],
                phase_history=ledger.history_for(t),
                node_send_costs=ledger.send_costs_for(t),
                node_listen_costs=ledger.listen_costs_for(t),
            )
            for t in range(B)
        ]
        return BatchResult(results=tuple(results), seeds=tuple(seeds))


def mc_run(
    protocol: Protocol,
    adversary: MCAdversary,
    n_channels: int,
    seed: int | np.random.Generator | None = None,
    **kwargs,
) -> RunResult:
    """One-shot convenience wrapper around :class:`MCSimulator`."""
    return MCSimulator(protocol, adversary, n_channels, **kwargs).run(seed)


def hopping_rate_params(params, n_channels: int):
    """Figure 1 parameters corrected for channel-hop dilution.

    Without shared hopping sequences (the paper's model has no shared
    secrets), Alice and Bob meet in a slot only when their independent
    hops coincide — probability ``1/C`` — so running Figure 1 unchanged
    on ``C`` channels silently degrades its ``1 - eps`` guarantee.
    Restoring the per-phase meeting rate requires boosting the action
    probability by ``sqrt(C)``, i.e. replacing ``ln(8/eps)`` with
    ``C * ln(8/eps)``; we do that by substituting the effective epsilon
    ``eps' = denom * (eps/denom)**C`` and raising the first epoch so the
    boosted probability stays below 1.

    The corrected protocol's costs grow by ``sqrt(C)`` — which is
    exactly what cancels the adversary's C-fold per-slot jamming bill
    (experiment E15's net-neutrality finding).
    """
    import dataclasses
    import math

    from repro.protocols.one_to_one import OneToOneParams

    if n_channels < 1:
        raise ConfigurationError(f"n_channels must be >= 1, got {n_channels}")
    if not isinstance(params, OneToOneParams):
        raise ConfigurationError(
            "hopping_rate_params currently supports OneToOneParams"
        )
    if n_channels == 1:
        return params
    denom = params.eps_denom
    eff_eps = denom * (params.epsilon / denom) ** n_channels
    # Keep p_i <= ~0.5 at the first epoch: 2^(i-1) >= 4 C ln(denom/eps).
    min_first = 1 + math.ceil(
        math.log2(4.0 * n_channels * math.log(denom / params.epsilon))
    )
    return dataclasses.replace(
        params,
        epsilon=eff_eps,
        first_epoch=max(params.first_epoch, min_first),
        max_epoch=max(params.max_epoch, max(params.first_epoch, min_first) + 20),
    )
