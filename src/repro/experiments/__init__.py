"""Experiment registry: one module per theorem-level claim.

The paper is a theory paper — its "evaluation" is five theorems, so
each experiment regenerates one claim's *shape* (exponents, monotonic
directions, crossovers) rather than a testbed number.  See DESIGN.md §4
for the experiment-to-theorem index and EXPERIMENTS.md for recorded
paper-versus-measured outcomes.

Usage::

    from repro.experiments import RunConfig, run_experiment, list_experiments
    report = run_experiment("E1", RunConfig(seed=0, quick=True, jobs=4))
    print(report.render())
"""

from repro.experiments.registry import (
    Experiment,
    ExperimentReport,
    RunConfig,
    get_experiment,
    list_experiments,
    run_experiment,
)
from repro.experiments.runner import Table, replicate, sweep_epoch_targets

__all__ = [
    "Experiment",
    "ExperimentReport",
    "RunConfig",
    "Table",
    "get_experiment",
    "list_experiments",
    "replicate",
    "run_experiment",
    "sweep_epoch_targets",
]
