"""Property-based tests of protocol state-machine invariants.

These drive full executions under randomized adversaries and assert
the structural invariants the paper's analysis relies on:

* status transitions are one-way (uninformed -> informed -> helper ->
  terminated, with Case 1 allowed from anywhere);
* a helper was necessarily informed (`n_u` set exactly for helpers);
* energy conservation: simulator totals match ledger history;
* a terminated protocol stays terminated.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversaries.basic import RandomJammer, SilentAdversary, SuffixJammer
from repro.adversaries.budget import BudgetCap
from repro.engine.phase import PhaseObservation
from repro.engine.simulator import Simulator
from repro.protocols.base import NodeStatus
from repro.protocols.one_to_n import OneToNBroadcast, OneToNParams
from repro.protocols.one_to_one import OneToOneBroadcast, OneToOneParams


def make_adversary(kind: str):
    if kind == "silent":
        return SilentAdversary()
    if kind == "random":
        return BudgetCap(RandomJammer(0.25), budget=20_000)
    return BudgetCap(SuffixJammer(0.7), budget=20_000)


ADVERSARIES = st.sampled_from(["silent", "random", "suffix"])


class StatusWatcher(OneToNBroadcast):
    """Asserts legal status transitions after every repetition."""

    LEGAL = {
        (NodeStatus.UNINFORMED, NodeStatus.UNINFORMED),
        (NodeStatus.UNINFORMED, NodeStatus.INFORMED),
        (NodeStatus.UNINFORMED, NodeStatus.TERMINATED),  # Case 1
        (NodeStatus.INFORMED, NodeStatus.INFORMED),
        (NodeStatus.INFORMED, NodeStatus.HELPER),
        (NodeStatus.INFORMED, NodeStatus.TERMINATED),  # Case 1
        (NodeStatus.HELPER, NodeStatus.HELPER),
        (NodeStatus.HELPER, NodeStatus.TERMINATED),
        (NodeStatus.TERMINATED, NodeStatus.TERMINATED),
    }

    def observe(self, obs: PhaseObservation) -> None:
        before = self.status.copy()
        super().observe(obs)
        after = self.status
        for b, a in zip(before, after):
            assert (NodeStatus(b), NodeStatus(a)) in self.LEGAL, (b, a)
        # Helpers (and only ex-informed nodes) carry an n_u estimate.
        is_or_was_helper = (after == NodeStatus.HELPER) | (
            (after == NodeStatus.TERMINATED) & ~np.isnan(self.n_est)
        )
        assert not np.isnan(self.n_est[after == NodeStatus.HELPER]).any()
        del is_or_was_helper


@settings(max_examples=12, deadline=None)
@given(st.integers(1, 12), ADVERSARIES, st.integers(0, 2**31 - 1))
def test_one_to_n_invariants(n, adversary_kind, seed):
    proto = StatusWatcher(n, OneToNParams.sim())
    sim = Simulator(proto, make_adversary(adversary_kind), max_slots=3_000_000)
    res = sim.run(seed)
    # Success implies everyone was informed at some point.
    if res.stats["success"]:
        assert res.stats["n_informed"] == n
    # Costs are non-negative and bounded by total slots.
    assert (res.node_costs >= 0).all()
    assert res.node_costs.max() <= res.slots
    # T equals what the ledger charged the adversary.
    assert res.adversary_cost >= 0


@settings(max_examples=15, deadline=None)
@given(
    st.sampled_from([0.3, 0.1, 0.03]),
    ADVERSARIES,
    st.integers(0, 2**31 - 1),
)
def test_one_to_one_invariants(epsilon, adversary_kind, seed):
    proto = OneToOneBroadcast(OneToOneParams.sim(epsilon=epsilon))
    sim = Simulator(proto, make_adversary(adversary_kind), max_slots=3_000_000)
    res = sim.run(seed)
    stats = res.stats
    # Halting is final and consistent.
    assert proto.done
    assert stats["alice_halted"] and stats["bob_halted"]
    # Informed implies Bob halted with success recorded.
    if stats["success"]:
        assert proto.bob_informed
    # Phase accounting: slots is the sum of executed phase lengths, and
    # each party's cost is below its total possible actions.
    assert res.node_costs.max() <= res.slots
    # The protocol refuses to emit more phases once done.
    assert proto.next_phase() is None


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_energy_conservation_with_history(seed):
    proto = OneToNBroadcast(6, OneToNParams.sim())
    sim = Simulator(
        proto, BudgetCap(SuffixJammer(0.5), budget=5_000),
        max_slots=3_000_000, keep_history=True,
    )
    res = sim.run(seed)
    assert sum(h.node_total for h in res.phase_history) == res.node_costs.sum()
    assert sum(h.adversary for h in res.phase_history) == res.adversary_cost
    assert sum(h.length for h in res.phase_history) == res.slots
