"""Unit tests for slot resolution — the channel semantics of §1.2."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.events import (
    JamPlan,
    ListenEvents,
    SendEvents,
    SlotStatus,
    TxKind,
)
from repro.channel.model import resolve_phase, slot_content
from repro.errors import SimulationError


def sends(*triples):
    nodes, slots, kinds = zip(*triples) if triples else ((), (), ())
    return SendEvents(
        np.array(nodes, dtype=np.int64),
        np.array(slots, dtype=np.int64),
        np.array(kinds, dtype=np.int8),
    )


def listens(*pairs):
    nodes, slots = zip(*pairs) if pairs else ((), ())
    return ListenEvents(np.array(nodes, dtype=np.int64), np.array(slots, dtype=np.int64))


class TestSlotContent:
    def test_empty_phase_all_clear(self):
        content = slot_content(8, SendEvents.empty(), JamPlan.silent(8))
        assert (content == SlotStatus.CLEAR).all()

    def test_single_sender_decodes(self):
        content = slot_content(4, sends((0, 2, TxKind.DATA)), JamPlan.silent(4))
        assert content[2] == SlotStatus.DATA
        assert (np.delete(content, 2) == SlotStatus.CLEAR).all()

    def test_collision_is_noise(self):
        content = slot_content(
            4, sends((0, 1, TxKind.DATA), (1, 1, TxKind.DATA)), JamPlan.silent(4)
        )
        assert content[1] == SlotStatus.NOISE

    def test_deliberate_noise_tx(self):
        content = slot_content(4, sends((0, 0, TxKind.NOISE)), JamPlan.silent(4))
        assert content[0] == SlotStatus.NOISE

    def test_spoof_alone_decodes(self):
        plan = JamPlan(
            length=4,
            spoof_slots=np.array([3]),
            spoof_kinds=np.array([int(TxKind.NACK)], dtype=np.int8),
        )
        content = slot_content(4, SendEvents.empty(), plan)
        assert content[3] == SlotStatus.NACK

    def test_spoof_collides_with_real_send(self):
        plan = JamPlan(
            length=4,
            spoof_slots=np.array([1]),
            spoof_kinds=np.array([int(TxKind.NACK)], dtype=np.int8),
        )
        content = slot_content(4, sends((0, 1, TxKind.DATA)), plan)
        assert content[1] == SlotStatus.NOISE


class TestResolvePhase:
    def test_listener_hears_message(self):
        out = resolve_phase(
            4, 2, sends((0, 1, TxKind.DATA)), listens((1, 1)), JamPlan.silent(4)
        )
        assert out.heard[1, SlotStatus.DATA] == 1
        assert out.send_cost[0] == 1
        assert out.listen_cost[1] == 1
        assert out.data_slots == 1

    def test_jam_turns_message_to_noise(self):
        plan = JamPlan(length=4, global_slots=np.array([1]))
        out = resolve_phase(4, 2, sends((0, 1, TxKind.DATA)), listens((1, 1)), plan)
        assert out.heard[1, SlotStatus.DATA] == 0
        assert out.heard[1, SlotStatus.NOISE] == 1
        assert out.adversary_cost == 1

    def test_targeted_jam_spares_other_group(self):
        plan = JamPlan(length=4, targeted={1: np.array([1])})
        groups = np.array([0, 1, 1])
        out = resolve_phase(
            4, 3, sends((0, 1, TxKind.DATA)), listens((1, 1), (2, 1)), plan,
            groups=groups,
        )
        # Both listeners are in the jammed group.
        assert out.heard[1, SlotStatus.NOISE] == 1
        assert out.heard[2, SlotStatus.NOISE] == 1
        # Group-0 listener in the same slot would hear the message.
        out2 = resolve_phase(
            4, 3, sends((0, 1, TxKind.DATA)), listens((2, 1)), plan,
            groups=np.array([0, 1, 0]),
        )
        assert out2.heard[2, SlotStatus.DATA] == 1

    def test_half_duplex_send_wins(self):
        # Node 0 schedules both a send and a listen in slot 1: only the
        # send happens and is charged.
        out = resolve_phase(
            4, 2, sends((0, 1, TxKind.DATA)), listens((0, 1), (1, 1)),
            JamPlan.silent(4),
        )
        assert out.send_cost[0] == 1
        assert out.listen_cost[0] == 0
        assert out.heard[0].sum() == 0

    def test_sender_does_not_hear_itself(self):
        out = resolve_phase(
            4, 1, sends((0, 1, TxKind.DATA)), listens((0, 1), (0, 2)),
            JamPlan.silent(4),
        )
        # Slot-1 listen dropped (own send); slot-2 listen hears clear.
        assert out.heard[0, SlotStatus.DATA] == 0
        assert out.heard[0, SlotStatus.CLEAR] == 1
        assert out.listen_cost[0] == 1

    def test_clear_count(self):
        out = resolve_phase(
            8, 2, SendEvents.empty(), listens((0, 0), (0, 1), (0, 2)),
            JamPlan.silent(8),
        )
        assert out.heard[0, SlotStatus.CLEAR] == 3
        assert out.n_clear == 8

    def test_costs_count_every_action(self):
        out = resolve_phase(
            8, 2,
            sends((0, 0, TxKind.DATA), (0, 3, TxKind.DATA), (1, 5, TxKind.NOISE)),
            listens((1, 0), (1, 1)),
            JamPlan.silent(8),
        )
        assert out.send_cost[0] == 2
        assert out.send_cost[1] == 1
        assert out.listen_cost[1] == 2

    def test_node_index_out_of_range(self):
        with pytest.raises(SimulationError):
            resolve_phase(4, 1, sends((1, 0, TxKind.DATA)), ListenEvents.empty(),
                          JamPlan.silent(4))

    def test_slot_index_out_of_range(self):
        with pytest.raises(SimulationError):
            resolve_phase(4, 1, sends((0, 4, TxKind.DATA)), ListenEvents.empty(),
                          JamPlan.silent(4))

    def test_plan_length_mismatch(self):
        with pytest.raises(SimulationError):
            resolve_phase(4, 1, SendEvents.empty(), ListenEvents.empty(),
                          JamPlan.silent(5))

    def test_groups_shape_checked(self):
        with pytest.raises(SimulationError):
            resolve_phase(4, 2, SendEvents.empty(), ListenEvents.empty(),
                          JamPlan.silent(4), groups=np.array([0]))

    def test_spoof_heard_as_message(self):
        plan = JamPlan(
            length=4,
            spoof_slots=np.array([2]),
            spoof_kinds=np.array([int(TxKind.ACK)], dtype=np.int8),
        )
        out = resolve_phase(4, 1, SendEvents.empty(), listens((0, 2)), plan)
        assert out.heard[0, SlotStatus.ACK] == 1
        assert out.adversary_cost == 1
