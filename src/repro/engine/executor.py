"""Deterministic fan-out of independent simulation tasks.

Every experiment decomposes into independent ``(point, replication)``
tasks whose seeds are fixed up front, so execution order cannot change
the science — which makes them safe to spread across worker processes.
This module is the execution backbone behind
:func:`repro.experiments.runner.replicate` and
:func:`repro.experiments.runner.sweep_epoch_targets`:

* the **serial** backend (default) runs tasks in order in-process, with
  zero dependencies and best-effort timeout enforcement via
  ``SIGALRM`` where available;
* the **process** backend forks a pool of workers that *inherit* the
  task closures (no pickling of user callables — only task indices go
  to workers and pickled results come back), with chunked task
  assignment, a per-task timeout, and bounded retry when a worker
  crashes.  A hung or segfaulting adversary run therefore cannot wedge
  a sweep.
* the **pool** backend (:class:`WorkerPool`) keeps forked workers alive
  across ``run_tasks`` calls: spawn once, then ship each batch's task
  callables by value (:mod:`repro.engine.closures`) over the pipes.  A
  long-lived caller — the sweep service, a ``run all`` CLI invocation,
  an arena search issuing thousands of small batches — pays the fork
  cost once instead of per batch.  Tasks that resist serialization fall
  back to the fork-per-call process backend transparently.

Determinism contract: ``run_tasks`` returns results in task order, and
each task must be a pure function of its own pre-derived seed.  Under
that contract serial, process, and pooled runs are bit-identical.

Examples
--------
>>> from repro.engine.executor import run_tasks
>>> run_tasks([lambda i=i: i * i for i in range(5)])
[0, 1, 4, 9, 16]
"""

from __future__ import annotations

import os
import signal
import threading
import time
from collections import deque
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import Any

from repro.errors import ExecutorError
from repro.telemetry.sink import get_sink

__all__ = [
    "ExecutorStats",
    "WorkerPool",
    "available_cpus",
    "resolve_jobs",
    "run_tasks",
]

# How often the parent wakes to check worker deadlines (seconds).
_POLL_INTERVAL = 0.05


@dataclass
class ExecutorStats:
    """Accounting for one or more :func:`run_tasks` batches.

    An experiment typically issues several batches (one per
    ``replicate`` call); passing the same stats object accumulates
    across them.  ``busy_time`` is the sum of in-task durations as
    measured inside the workers, so ``utilization`` compares it against
    the pool's capacity ``wall_time * workers``.
    """

    tasks: int = 0
    batches: int = 0
    retries: int = 0
    timeouts: int = 0
    crashes: int = 0
    wall_time: float = 0.0
    busy_time: float = 0.0
    workers: int = 0
    backend: str = ""
    cache_hits: int = 0
    cache_misses: int = 0
    cache_bytes_read: int = 0
    cache_bytes_written: int = 0
    batch_tasks: int = 0
    batch_trials: int = 0
    batch_capacity: int = 0

    @property
    def utilization(self) -> float:
        """Fraction of pool capacity spent inside tasks (0 when idle)."""
        capacity = self.wall_time * max(self.workers, 1)
        return self.busy_time / capacity if capacity > 0 else 0.0

    @property
    def cache_requests(self) -> int:
        """Cacheable task lookups issued (hits + misses)."""
        return self.cache_hits + self.cache_misses

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of cacheable lookups served warm (0 when none)."""
        return self.cache_hits / self.cache_requests if self.cache_requests else 0.0

    @property
    def trials_per_task(self) -> float:
        """Mean trials packed into each batched task (0 when none ran)."""
        return self.batch_trials / self.batch_tasks if self.batch_tasks else 0.0

    @property
    def batch_fill_rate(self) -> float:
        """Fraction of offered batch slots actually filled with trials.

        Below 1.0 when cache hits thinned a chunk or the trial count did
        not divide evenly into the configured batch size.
        """
        return (
            self.batch_trials / self.batch_capacity if self.batch_capacity else 0.0
        )

    def summary(self) -> str:
        """One-line human summary for report notes / the CLI."""
        parts = [
            f"executor: {self.tasks} tasks in {self.batches} batches",
            f"backend={self.backend or 'serial'}",
            f"workers={max(self.workers, 1)}",
            f"wall {self.wall_time:.2f}s",
            f"utilization {self.utilization:.0%}",
        ]
        if self.retries or self.timeouts or self.crashes:
            parts.append(
                f"retries={self.retries} (timeouts={self.timeouts}, "
                f"crashes={self.crashes})"
            )
        if self.cache_requests:
            parts.append(
                f"cache {self.cache_hits}/{self.cache_requests} hits "
                f"({self.cache_hit_rate:.0%}; "
                f"{self.cache_bytes_read}B read, "
                f"{self.cache_bytes_written}B written)"
            )
        if self.batch_tasks:
            parts.append(
                f"batched {self.batch_trials} trials in {self.batch_tasks} "
                f"tasks ({self.trials_per_task:.1f}/task, "
                f"fill {self.batch_fill_rate:.0%})"
            )
        return ", ".join(parts)


def available_cpus() -> int:
    """CPUs actually usable by this process.

    ``os.cpu_count()`` reports the machine, not the process: under a
    cgroup CPU set or ``taskset`` affinity mask (the norm in CI
    containers) it oversubscribes the pool, and the forked workers then
    fight each other for the few cores the scheduler will really give
    them.  ``os.sched_getaffinity(0)`` reflects those limits where the
    platform provides it.
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return len(getaffinity(0)) or 1
        except OSError:  # pragma: no cover - affinity query refused
            pass
    return os.cpu_count() or 1


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` value: ``None``/``0``/negative mean "all
    cores available to this process" (see :func:`available_cpus`)."""
    if jobs is None or jobs <= 0:
        return available_cpus()
    return jobs


def run_tasks(
    tasks: Sequence[Callable[[], Any]],
    *,
    jobs: int = 1,
    timeout: float | None = None,
    retries: int = 1,
    chunk_size: int | None = None,
    stats: ExecutorStats | None = None,
    pool: "WorkerPool | None" = None,
) -> list[Any]:
    """Run independent zero-argument tasks, returning results in order.

    Parameters
    ----------
    tasks:
        Zero-argument callables.  Each must be a pure function of state
        fixed before the call (its derived seed), never of shared
        mutable state — that is what makes parallel runs bit-identical
        to serial ones.
    jobs:
        Worker processes.  ``1`` (default) runs serially in-process;
        ``0`` or negative means one per CPU core.  The process backend
        needs ``os.fork`` (POSIX); elsewhere execution silently falls
        back to serial.
    timeout:
        Per-task wall-clock limit in seconds.  In the process backend
        an overrunning worker is killed and the task retried; serially
        it is enforced best-effort via ``SIGALRM`` on the main thread.
    retries:
        How many times a task that timed out or whose worker crashed is
        retried before :class:`~repro.errors.ExecutorError` is raised.
        Ordinary exceptions raised *by* a task are never retried — they
        are deterministic and propagate immediately.
    chunk_size:
        Tasks per assignment message in the process backend (default:
        auto, targeting ~4 chunks per worker).
    stats:
        Optional :class:`ExecutorStats` to accumulate into.
    pool:
        Optional :class:`WorkerPool` of long-lived workers.  Used when
        ``jobs > 1`` and every task serializes
        (:mod:`repro.engine.closures`); otherwise execution falls back
        to the fork-per-call process backend with identical results.
    """
    if retries < 0:
        raise ExecutorError(f"retries must be >= 0, got {retries}")
    stats = stats if stats is not None else ExecutorStats()
    tasks = list(tasks)
    n = len(tasks)
    if n == 0:
        return []
    jobs = min(resolve_jobs(jobs), n)
    can_fork = hasattr(os, "fork")
    use_pool = (
        pool is not None and not pool.closed and jobs > 1 and can_fork
    )
    payloads = pool.encode_tasks(tasks) if use_pool else None
    if payloads is None:
        use_pool = False
    use_process = not use_pool and jobs > 1 and can_fork

    start = time.perf_counter()
    if use_pool:
        results = pool.run_encoded(payloads, timeout, retries, chunk_size, stats)
        backend, workers = "pool", min(pool.jobs, n)
    elif use_process:
        results = _run_process(tasks, jobs, timeout, retries, chunk_size, stats)
        backend, workers = "process", jobs
    else:
        results = _run_serial(tasks, timeout, retries, stats)
        backend, workers = "serial", 1
    wall = time.perf_counter() - start
    stats.tasks += n
    stats.batches += 1
    stats.wall_time += wall
    sink = get_sink()
    if sink is not None:
        sink.span_event(
            "executor.batch", wall, backend=backend, workers=workers, tasks=n
        )
    stats.workers = max(stats.workers, workers)
    # A mixed run (some batches too small to fork) reports the parallel
    # capability used: the record is about capability, not every
    # batch's path.
    if stats.backend not in ("process", "pool"):
        stats.backend = backend
    return results


# --------------------------------------------------------------------------
# serial backend


class _SerialTimeout(Exception):
    """Internal: a SIGALRM fired inside a serially-executed task."""


def _raise_serial_timeout(signum, frame):
    raise _SerialTimeout()


def _run_serial(tasks, timeout, retries, stats):
    sink = get_sink()
    use_alarm = bool(timeout) and hasattr(signal, "setitimer")
    if use_alarm:
        try:
            previous = signal.signal(signal.SIGALRM, _raise_serial_timeout)
        except ValueError:  # not on the main thread: no enforcement
            use_alarm = False

    results = []
    try:
        for i, task in enumerate(tasks):
            for attempt in range(retries + 1):
                t0 = time.perf_counter()
                completed = False
                try:
                    if use_alarm:
                        signal.setitimer(signal.ITIMER_REAL, timeout)
                    value = task()
                    completed = True
                    # Disarm before the result is recorded.  The alarm
                    # used to stay armed until the ``finally`` below,
                    # so one firing after the task finished (but before
                    # the disarm) was caught as a timeout and the task
                    # retried — appending a *duplicate* result and
                    # shifting every later result by one slot.
                    if use_alarm:
                        signal.setitimer(signal.ITIMER_REAL, 0)
                except _SerialTimeout:
                    # ``completed`` distinguishes a real in-task timeout
                    # from an alarm that lost the race with the task's
                    # completion; the latter is success, not a retry.
                    pass
                finally:
                    if use_alarm:
                        try:
                            signal.setitimer(signal.ITIMER_REAL, 0)
                        except _SerialTimeout:
                            pass  # alarm landed on the disarm call itself
                    duration = time.perf_counter() - t0
                    stats.busy_time += duration
                if completed:
                    if sink is not None:
                        sink.span_event(
                            "executor.task", duration,
                            index=i, attempt=attempt, outcome="ok",
                        )
                    results.append(value)
                    break
                stats.timeouts += 1
                if sink is not None:
                    sink.span_event(
                        "executor.task", duration,
                        index=i, attempt=attempt, outcome="timeout",
                    )
                if attempt >= retries:
                    raise ExecutorError(
                        f"task {i} timed out after {timeout}s "
                        f"({attempt + 1} attempts)"
                    ) from None
                stats.retries += 1
    finally:
        if use_alarm:
            signal.signal(signal.SIGALRM, previous)
    return results


# --------------------------------------------------------------------------
# shared worker-side plumbing


def _run_one(task) -> tuple:
    """Execute one task in a worker; returns the result message tail."""
    t0 = time.perf_counter()
    try:
        result = task()
        return ("ok", result, time.perf_counter() - t0)
    except (KeyboardInterrupt, SystemExit):
        # A Ctrl-C (or an explicit exit) must kill this worker — the
        # parent sees the EOF as a crash and its own interrupt tears
        # the pool down.  Reporting it as a task error would swallow
        # the interrupt and keep the fork pool running through the
        # user's abort.
        raise
    except Exception as exc:  # forwarded to parent
        return ("err", f"{type(exc).__name__}: {exc}",
                time.perf_counter() - t0)


def _send_result(conn, idx: int, outcome: tuple) -> None:
    status, payload, duration = outcome
    try:
        conn.send((status, idx, payload, duration))
    except Exception as exc:  # unpicklable result: report, don't die
        conn.send(("err", idx, f"result not picklable: {exc}", duration))


def _worker_main(conn, tasks):
    """Fork-per-call worker loop: receive index chunks, send results.

    Runs in a child forked *after* the task list was built, so
    ``tasks`` (with all its closures) is inherited memory — nothing
    user-provided crosses the pipe except pickled *results*.
    """
    while True:
        try:
            chunk = conn.recv()
        except EOFError:
            return
        if chunk is None:
            return
        for idx in chunk:
            _send_result(conn, idx, _run_one(tasks[idx]))


def _pool_worker_main(conn):
    """Persistent-pool worker loop: receive serialized task chunks.

    Forked once at pool creation, *before* any task exists, so each
    chunk carries its callables by value
    (:func:`repro.engine.closures.loads_task`).  Every chunk message
    also names the parent's active telemetry run (or ``None``) so a
    worker outliving many telemetry sessions always writes into the
    right event log — with the parent's monotonic base, keeping
    timestamps comparable.
    """
    from repro.engine.closures import loads_task
    from repro.telemetry.sink import _worker_adopt

    while True:
        try:
            msg = conn.recv()
        except EOFError:
            return
        if msg is None:
            return
        sink_info, chunk = msg
        _worker_adopt(sink_info)
        for idx, payload in chunk:
            t0 = time.perf_counter()
            try:
                task = loads_task(payload)
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as exc:
                _send_result(
                    conn, idx,
                    ("err", f"task deserialization failed: {exc}",
                     time.perf_counter() - t0),
                )
                continue
            _send_result(conn, idx, _run_one(task))


class _Worker:
    __slots__ = ("proc", "conn", "assigned", "deadline")

    def __init__(self, proc, conn):
        self.proc = proc
        self.conn = conn
        self.assigned: deque[int] = deque()  # front = in-flight task
        self.deadline: float | None = None


def _spawn_worker(target, args, *, pool: bool) -> _Worker:
    import multiprocessing as mp

    ctx = mp.get_context("fork")
    parent_conn, child_conn = ctx.Pipe()
    proc = ctx.Process(target=target, args=(child_conn, *args), daemon=True)
    proc.start()
    child_conn.close()
    sink = get_sink()
    if sink is not None:
        sink.event("executor.worker.spawn", worker_pid=proc.pid, pool=pool)
    return _Worker(proc, parent_conn)


def _kill_worker(worker: _Worker, *, timeout: float = 0.0) -> None:
    """Stop one worker (politely up to ``timeout``, then SIGKILL)."""
    if timeout > 0:
        try:
            worker.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        worker.proc.join(timeout=timeout)
    if worker.proc.is_alive():
        worker.proc.kill()
        worker.proc.join()
    worker.conn.close()
    sink = get_sink()
    if sink is not None:
        sink.event(
            "executor.worker.exit",
            worker_pid=worker.proc.pid, exitcode=worker.proc.exitcode,
        )


def _drive_workers(
    n: int,
    workers: list[_Worker],
    spawn: Callable[[], _Worker],
    encode_chunk: Callable[[list[int]], Any],
    timeout: float | None,
    retries: int,
    chunk_size: int | None,
    stats: ExecutorStats,
) -> list[Any]:
    """Generic chunked scheduler shared by the process and pool backends.

    Feeds index chunks (encoded by ``encode_chunk``) to ``workers``,
    collects per-task results in order, enforces per-task deadlines,
    and replaces crashed or overrunning workers via ``spawn``.
    ``workers`` is mutated in place so a persistent pool keeps the
    replacements.  Raises :class:`~repro.errors.ExecutorError` once a
    task exhausts its retry budget; teardown is the caller's job.
    """
    from multiprocessing.connection import wait as conn_wait

    sink = get_sink()
    if chunk_size is None:
        chunk_size = max(1, min(32, n // (max(len(workers), 1) * 4)))

    pending: deque[int] = deque(range(n))
    attempts = [0] * n
    results: list[Any] = [None] * n
    done = 0

    def assign(worker: _Worker) -> None:
        if not pending or worker.assigned:
            return
        chunk = [pending.popleft() for _ in range(min(chunk_size, len(pending)))]
        worker.conn.send(encode_chunk(chunk))
        worker.assigned.extend(chunk)
        worker.deadline = (time.perf_counter() + timeout) if timeout else None

    def consume(worker: _Worker, msg) -> None:
        nonlocal done
        status, idx, payload, duration = msg
        expected = worker.assigned.popleft()
        if expected != idx:  # pragma: no cover - protocol invariant
            raise ExecutorError(f"worker returned task {idx}, expected {expected}")
        stats.busy_time += duration
        if sink is not None:
            sink.span_event(
                "executor.task", duration,
                index=idx, attempt=attempts[idx],
                outcome="err" if status == "err" else "ok",
            )
        if status == "err":
            raise ExecutorError(f"task {idx} raised: {payload}")
        results[idx] = payload
        done += 1
        worker.deadline = (
            (time.perf_counter() + timeout)
            if timeout and worker.assigned else None
        )

    def fail_in_flight(worker: _Worker, kind: str) -> None:
        """Kill ``worker``, requeue its chunk, charge one attempt to the
        in-flight task."""
        worker.proc.kill()
        worker.proc.join()
        worker.conn.close()
        idx = worker.assigned.popleft()
        attempts[idx] += 1
        if kind == "timeout":
            stats.timeouts += 1
        else:
            stats.crashes += 1
        if sink is not None:
            sink.event(
                "executor.task.fail",
                index=idx, attempt=attempts[idx], outcome=kind,
                worker_pid=worker.proc.pid,
            )
        if attempts[idx] > retries:
            raise ExecutorError(
                f"task {idx} {kind} after {attempts[idx]} attempts "
                f"(retries={retries})"
            )
        stats.retries += 1
        # Untouched remainder of the chunk goes back first, the failed
        # task in front of it — order keeps results deterministic-ready.
        for j in reversed(worker.assigned):
            pending.appendleft(j)
        pending.appendleft(idx)

    for w in workers:
        assign(w)
    while done < n:
        active = [w for w in workers if w.assigned]
        ready = conn_wait([w.conn for w in active], timeout=_POLL_INTERVAL)
        by_conn = {w.conn: w for w in workers}
        for conn in ready:
            w = by_conn[conn]
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                workers.remove(w)
                fail_in_flight(w, "crash")
                workers.append(spawn())
                continue
            consume(w, msg)
        now = time.perf_counter()
        for w in list(workers):
            if w.assigned and w.deadline is not None and now > w.deadline:
                # Drain results that beat the deadline before blaming
                # the in-flight task.
                while w.assigned and w.conn.poll(0):
                    try:
                        consume(w, w.conn.recv())
                    except (EOFError, OSError):
                        break
                if not (w.assigned and w.deadline is not None
                        and now > w.deadline):
                    continue
                workers.remove(w)
                fail_in_flight(w, "timeout")
                workers.append(spawn())
        for w in workers:
            assign(w)
    return results


# --------------------------------------------------------------------------
# process backend (fork per call)


def _run_process(tasks, jobs, timeout, retries, chunk_size, stats):
    def spawn() -> _Worker:
        return _spawn_worker(_worker_main, (tasks,), pool=False)

    workers = [spawn() for _ in range(jobs)]
    try:
        return _drive_workers(
            len(tasks), workers, spawn, list,
            timeout, retries, chunk_size, stats,
        )
    finally:
        for w in workers:
            _kill_worker(w, timeout=1.0)


# --------------------------------------------------------------------------
# pool backend (spawn once, reuse across run_tasks calls)


class WorkerPool:
    """Long-lived fork workers reusable across :func:`run_tasks` calls.

    The classic process backend pays one fork per worker per *batch*;
    for workloads issuing many small batches (arena search, ``run
    all``, the sweep service) that cost dominates.  A ``WorkerPool``
    forks its workers once — lazily, at the first pooled batch — and
    thereafter ships each batch's task callables by value over the
    existing pipes (:mod:`repro.engine.closures`).

    Contract mirrors the process backend exactly: results in task
    order, per-task deadline enforcement (an overrunning or crashed
    worker is killed, *replaced in the pool*, and the task retried),
    and bit-identical results — a worker executes the same closure the
    parent would, against its own fork-inherited module state.

    Pass a pool to :func:`run_tasks` (or via
    ``RunConfig(pool=...)``); batches whose tasks cannot be serialized
    fall back to fork-per-call automatically.  One pool may be shared
    by sequential callers; concurrent ``run`` calls are serialized by
    an internal lock.  Use as a context manager or call :meth:`close`
    to reap the workers.
    """

    def __init__(self, jobs: int | None = None) -> None:
        self.jobs = resolve_jobs(jobs)
        self._workers: list[_Worker] = []
        self._lock = threading.Lock()
        self._closed = False
        self._spawned_total = 0

    # -- lifecycle -------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def alive_workers(self) -> int:
        """Currently live worker processes (0 before first use)."""
        return sum(1 for w in self._workers if w.proc.is_alive())

    @property
    def spawned_total(self) -> int:
        """Workers ever forked (replacements included) — the number a
        fork-per-call backend would multiply per batch."""
        return self._spawned_total

    def worker_pids(self) -> list[int]:
        """PIDs of the live workers (stable across batches — the
        pool-reuse property tests pin)."""
        return [w.proc.pid for w in self._workers if w.proc.is_alive()]

    def _spawn(self) -> _Worker:
        self._spawned_total += 1
        return _spawn_worker(_pool_worker_main, (), pool=True)

    def _ensure_workers(self) -> None:
        # Replace any worker that died between batches (OOM kill, admin
        # signal) so a pool never shrinks silently.
        kept = []
        for w in self._workers:
            if w.proc.is_alive():
                kept.append(w)
            else:
                _kill_worker(w)  # reap + close the pipe
        self._workers[:] = kept
        while len(self._workers) < self.jobs:
            self._workers.append(self._spawn())

    def reset(self) -> None:
        """Kill every worker; the next batch respawns a fresh set.

        Called internally after an error mid-batch, when in-flight
        state on the pipes can no longer be trusted.
        """
        for w in self._workers:
            _kill_worker(w)
        self._workers.clear()

    def close(self) -> None:
        """Shut the pool down (idempotent); later batches fall back."""
        if self._closed:
            return
        for w in self._workers:
            _kill_worker(w, timeout=1.0)
        self._workers.clear()
        self._closed = True

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- execution -------------------------------------------------------

    def encode_tasks(self, tasks: Sequence[Callable[[], Any]]) -> list[bytes] | None:
        """Serialized payloads for ``tasks``, or ``None`` when any task
        resists serialization (the fall-back-to-fork signal)."""
        from repro.engine.closures import TaskNotPortable, dumps_task

        try:
            return [dumps_task(task) for task in tasks]
        except TaskNotPortable:
            return None

    def run_encoded(
        self,
        payloads: list[bytes],
        timeout: float | None,
        retries: int,
        chunk_size: int | None,
        stats: ExecutorStats,
    ) -> list[Any]:
        """Run pre-encoded tasks on the pool (``run_tasks`` internals)."""
        from repro.telemetry.sink import _worker_share_info

        if self._closed:
            raise ExecutorError("worker pool is closed")
        sink_info = _worker_share_info()

        def encode_chunk(chunk: list[int]):
            return (sink_info, [(i, payloads[i]) for i in chunk])

        with self._lock:
            self._ensure_workers()
            try:
                return _drive_workers(
                    len(payloads), self._workers, self._spawn, encode_chunk,
                    timeout, retries, chunk_size, stats,
                )
            except BaseException:
                # In-flight chunks may still be draining into the
                # pipes; a fresh set of workers is cheaper than
                # resynchronizing the old ones.
                self.reset()
                raise
