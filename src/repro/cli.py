"""Command-line interface.

::

    repro-bcast list                 # what experiments exist
    repro-bcast run E1               # quick mode
    repro-bcast run E1 --full        # full sweep (what EXPERIMENTS.md records)
    repro-bcast run E1 --full -j 4   # same results, four worker processes
    repro-bcast run E1 --full -B 16  # same results, 16 trials per task
    repro-bcast run all --seed 7 --jobs 0 --timeout 600
    repro-bcast run E1 --cache       # memoize cells; re-runs are warm
    repro-bcast cache stats          # census of the result cache
    repro-bcast cache gc --max-bytes 500M
    repro-bcast run E1 --telemetry   # record a structured event log
    repro-bcast telemetry summarize  # render it (spans/counters/gauges)
    python -m repro.cli run E5       # equivalent module form
"""

from __future__ import annotations

import argparse
import sys
import time

from repro._version import __version__
from repro.experiments import RunConfig, list_experiments, run_experiment


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bcast",
        description=(
            "Reproduction harness for '(Near) Optimal Resource-Competitive "
            "Broadcast with Jamming' (SPAA 2014)."
        ),
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered experiments")

    run_p = sub.add_parser("run", help="run one experiment (or 'all')")
    run_p.add_argument("experiment", help="experiment id (E1..E17, A1, A3-A6, or 'all')")
    run_p.add_argument("--seed", type=int, default=0, help="root seed (default 0)")
    run_p.add_argument(
        "--full", action="store_true",
        help="full sweep instead of the quick CI-sized one",
    )
    run_p.add_argument(
        "--jobs", "-j", type=int, default=1, metavar="N",
        help="worker processes for replication fan-out "
             "(1 = serial, 0 = one per core; results are bit-identical "
             "for any N)",
    )
    run_p.add_argument(
        "--batch", "-B", type=int, default=1, metavar="B",
        help="trials per executor task: pack B replications into one "
             "vectorised run_batch call (1 = one run per task; results "
             "are bit-identical for any B)",
    )
    run_p.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-replication wall-clock limit; an overrunning worker "
             "is killed and the task retried instead of wedging the sweep",
    )
    run_p.add_argument(
        "--save", metavar="DIR",
        help="save each report as DIR/<eid>.json for later comparison",
    )
    run_p.add_argument(
        "--cache", action=argparse.BooleanOptionalAction, default=False,
        help="serve (sweep point, replication) cells from the "
             "content-addressed result cache and write misses back; an "
             "interrupted sweep resumes from its finished cells "
             "(--no-cache disables)",
    )
    run_p.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="cache location (default: $REPRO_CACHE_DIR or ./.repro-cache)",
    )
    run_p.add_argument(
        "--resume", action=argparse.BooleanOptionalAction, default=True,
        help="consult existing cache entries (--no-resume recomputes "
             "every cell but still refreshes the cache)",
    )
    run_p.add_argument(
        "--telemetry", nargs="?", const="", default=None, metavar="DIR",
        help="record a structured event log (task spans, cache counters, "
             "phase timings) plus a run manifest under DIR (default: "
             "$REPRO_TELEMETRY_DIR or ./.repro-telemetry); reports are "
             "byte-identical with or without it — inspect with "
             "'repro-bcast telemetry summarize'",
    )
    run_p.add_argument(
        "--pool", action="store_true",
        help="keep one pool of long-lived worker processes across every "
             "experiment in the invocation instead of forking per task "
             "batch (needs --jobs > 1; results are bit-identical either "
             "way)",
    )

    cache_p = sub.add_parser(
        "cache",
        help="inspect or maintain the result cache "
             "(see 'run --cache')",
    )
    cache_sub = cache_p.add_subparsers(dest="cache_command", required=True)
    for name, text in (
        ("stats", "entry/segment/byte census of the cache"),
        ("gc", "compact the cache and bound its size"),
        ("clear", "delete every cache entry"),
    ):
        p = cache_sub.add_parser(name, help=text)
        p.add_argument(
            "--cache-dir", metavar="DIR", default=None,
            help="cache location (default: $REPRO_CACHE_DIR or ./.repro-cache)",
        )
        if name == "gc":
            p.add_argument(
                "--max-bytes", metavar="N", default=None,
                help="size bound, with optional K/M/G suffix "
                     "(default 256M)",
            )

    cmp_p = sub.add_parser(
        "compare",
        help="diff two saved reports of the same experiment "
             "(regression detection)",
    )
    cmp_p.add_argument("old", help="baseline report JSON")
    cmp_p.add_argument("new", help="candidate report JSON")

    duel_p = sub.add_parser(
        "duel",
        help="sweep adversary budgets and chart cost-vs-T for the 1-to-1 "
             "protocols (ASCII, log-log)",
    )
    duel_p.add_argument("--seed", type=int, default=0)
    duel_p.add_argument(
        "--points", type=int, default=5, help="sweep points (default 5)"
    )
    duel_p.add_argument(
        "--reps", type=int, default=3, help="replications per point (default 3)"
    )
    duel_p.add_argument(
        "--adversary", default="default", metavar="FAMILY",
        help="attack family swept against all three protocols; 'default' "
             "keeps the historic pairing (epoch-target blocking vs the "
             "randomized protocols, full suffix jam vs deterministic). "
             "See 'repro-bcast arena search --help' for the searchable "
             "space behind these families.",
    )

    arena_p = sub.add_parser(
        "arena",
        help="adversarial strategy search, attack corpus, and tournaments "
             "(repro.arena)",
    )
    arena_sub = arena_p.add_subparsers(dest="arena_command", required=True)

    search_p = arena_sub.add_parser(
        "search",
        help="search the adversary genome space for the strongest attack",
    )
    search_p.add_argument("--seed", type=int, default=0)
    search_p.add_argument(
        "--protocol", default="fig1",
        help="defender preset to attack (default fig1)",
    )
    search_p.add_argument(
        "--algo", choices=("evolve", "random"), default="evolve",
        help="evolutionary (mu+lambda) or pure random search",
    )
    search_p.add_argument(
        "--generations", type=int, default=3,
        help="evolutionary generations (default 3)",
    )
    search_p.add_argument(
        "--population", type=int, default=8,
        help="genomes per generation (default 8)",
    )
    search_p.add_argument(
        "--iterations", type=int, default=24,
        help="random-search samples when --algo random (default 24)",
    )
    search_p.add_argument(
        "--reps", type=int, default=3,
        help="replications per genome evaluation (default 3)",
    )
    search_p.add_argument(
        "--full", action="store_true",
        help="full-size budget range instead of the quick CI-sized one",
    )
    search_p.add_argument(
        "--top", type=int, default=10, help="leaderboard rows shown (default 10)"
    )
    search_p.add_argument(
        "--corpus", metavar="PATH", default=None,
        help="append the best attack found to this JSONL corpus",
    )
    search_p.add_argument(
        "--save", metavar="DIR",
        help="save the leaderboard report as DIR/ARENA-SEARCH.json",
    )

    tour_p = arena_sub.add_parser(
        "tournament",
        help="duel every defender preset against a fixed strategy roster",
    )
    tour_p.add_argument("--seed", type=int, default=0)
    tour_p.add_argument(
        "--protocols", default=None, metavar="A,B,...",
        help="comma-separated defender presets (default: all)",
    )
    tour_p.add_argument(
        "--reps", type=int, default=3,
        help="replications per matrix cell (default 3)",
    )
    tour_p.add_argument(
        "--save", metavar="DIR",
        help="save the matrix report as DIR/ARENA.json",
    )

    replay_p = arena_sub.add_parser(
        "replay",
        help="re-run corpus attacks and fail loudly on any drift",
    )
    replay_p.add_argument(
        "fingerprint", nargs="?", default=None,
        help="entry to replay (unambiguous prefix ok; default: all)",
    )
    replay_p.add_argument(
        "--corpus", metavar="PATH", default=".repro-arena/corpus.jsonl",
    )

    corpus_p = arena_sub.add_parser(
        "corpus", help="list the attack corpus, strongest first"
    )
    corpus_p.add_argument(
        "--corpus", metavar="PATH", default=".repro-arena/corpus.jsonl",
    )
    corpus_p.add_argument(
        "--shrink", metavar="FP", default=None,
        help="greedily minimize this entry's genome and store the result",
    )

    for p in (search_p, tour_p, replay_p, corpus_p):
        p.add_argument(
            "--jobs", "-j", type=int, default=1, metavar="N",
            help="worker processes (results are bit-identical for any N)",
        )
        p.add_argument(
            "--batch", "-B", type=int, default=1, metavar="B",
            help="trials per executor task (results are bit-identical "
                 "for any B)",
        )
        p.add_argument(
            "--telemetry", nargs="?", const="", default=None, metavar="DIR",
            help="record a structured event log under DIR (default: "
                 "$REPRO_TELEMETRY_DIR or ./.repro-telemetry)",
        )

    tele_p = sub.add_parser(
        "telemetry",
        help="inspect structured run telemetry (see 'run --telemetry')",
    )
    tele_sub = tele_p.add_subparsers(dest="telemetry_command", required=True)
    tele_sum_p = tele_sub.add_parser(
        "summarize",
        help="render a human summary (spans, counters, gauges) of one "
             "run's event log",
    )
    tele_tail_p = tele_sub.add_parser(
        "tail", help="print the last raw event records of one run"
    )
    tele_tail_p.add_argument(
        "-n", "--lines", type=int, default=20, metavar="N",
        help="records to print (default 20)",
    )
    tele_tail_p.add_argument(
        "-f", "--follow", action="store_true",
        help="keep printing new records as the run appends them "
             "(exits on the run.end event or Ctrl-C; survives log "
             "rotation)",
    )
    for p in (tele_sum_p, tele_tail_p):
        p.add_argument(
            "run", nargs="?", default=None,
            help="run id or run directory (default: the latest run)",
        )
        p.add_argument(
            "--dir", dest="telemetry_dir", metavar="DIR", default=None,
            help="telemetry root (default: $REPRO_TELEMETRY_DIR or "
                 "./.repro-telemetry)",
        )

    serve_p = sub.add_parser(
        "serve",
        help="run the sweep-job service: an HTTP server that dedupes "
             "identical requests, shares one worker pool and result "
             "cache across all clients, and streams per-job progress "
             "(repro.service)",
    )
    serve_p.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default 127.0.0.1)",
    )
    serve_p.add_argument(
        "--port", type=int, default=0, metavar="N",
        help="listen port (default 0 = pick an ephemeral port and "
             "print it)",
    )
    serve_p.add_argument(
        "--jobs", "-j", type=int, default=0, metavar="N",
        help="worker processes in the persistent pool (default 0 = one "
             "per core, 1 = serial)",
    )
    serve_p.add_argument(
        "--batch", "-B", type=int, default=1, metavar="B",
        help="trials per executor task (results are bit-identical for "
             "any B)",
    )
    serve_p.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="result cache shared by every job (default: "
             "$REPRO_CACHE_DIR or ./.repro-cache)",
    )
    serve_p.add_argument(
        "--telemetry", metavar="DIR", default="",
        help="root for per-job telemetry runs, which also feed the "
             "/events progress stream (default: $REPRO_TELEMETRY_DIR "
             "or ./.repro-telemetry)",
    )
    serve_p.add_argument(
        "--no-telemetry", action="store_true",
        help="disable per-job telemetry (the /events stream then only "
             "carries job state changes)",
    )

    submit_p = sub.add_parser(
        "submit",
        help="submit one experiment to a running sweep service and "
             "fetch the result",
    )
    submit_p.add_argument("url", help="service URL, e.g. http://127.0.0.1:8642")
    submit_p.add_argument("experiment", help="experiment id (E1..E17, A1, ...)")
    submit_p.add_argument("--seed", type=int, default=0)
    submit_p.add_argument(
        "--full", action="store_true",
        help="full sweep instead of the quick CI-sized one",
    )
    submit_p.add_argument(
        "--save", metavar="PATH", default=None,
        help="write the report bytes to PATH (byte-identical to a local "
             "'run --save' of the same config)",
    )
    submit_p.add_argument(
        "--follow", action="store_true",
        help="stream the job's progress events while it runs",
    )
    submit_p.add_argument(
        "--no-wait", action="store_true",
        help="submit and print the job id without waiting for the result",
    )
    submit_p.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="give up waiting after this long (default: no limit)",
    )

    status_p = sub.add_parser(
        "status",
        help="show a sweep service's health and jobs (or one job)",
    )
    status_p.add_argument("url", help="service URL")
    status_p.add_argument(
        "job_id", nargs="?", default=None,
        help="job to show (default: server counters + every job)",
    )

    trace_p = sub.add_parser(
        "trace",
        help="run one small 1-to-1 exchange at slot resolution, audit the "
             "engine by replay, and print per-slot timelines",
    )
    trace_p.add_argument("--seed", type=int, default=7)
    trace_p.add_argument(
        "--jam", type=float, default=0.75,
        help="suffix jam fraction (default 0.75)",
    )
    trace_p.add_argument(
        "--budget", type=int, default=600, help="adversary budget (default 600)"
    )
    trace_p.add_argument(
        "--phases", type=int, default=3, help="timelines to print (default 3)"
    )
    return parser


def _trace(seed: int, jam: float, budget: int, n_phases: int) -> int:
    """The `trace` subcommand: slot-microscope in the terminal."""
    from repro.adversaries import BudgetCap, SuffixJammer
    from repro.engine.simulator import Simulator
    from repro.protocols import OneToOneBroadcast, OneToOneParams
    from repro.trace import TraceRecorder, timeline, verify_trace

    recorder = TraceRecorder()
    sim = Simulator(
        OneToOneBroadcast(OneToOneParams.sim()),
        BudgetCap(SuffixJammer(jam), budget=budget),
        trace=recorder,
    )
    result = sim.run(seed)
    verified = verify_trace(recorder)
    print(
        f"success={result.success}  T={result.adversary_cost}  "
        f"costs={list(result.node_costs)}  phases={result.phases}  "
        f"(replay audit: {verified} phases exact)"
    )
    print("glyphs: S sent/delivered, x sent/lost, M heard m, n heard noise,")
    print("        . heard clear, space asleep, # jammed")
    print()
    for t in recorder.phases[:n_phases]:
        print(timeline(t, max_width=100))
        print()
    return 0


def _duel(seed: int, points: int, reps: int, adversary: str = "default") -> int:
    """The `duel` subcommand: Figure 1 vs KSY vs deterministic.

    The sweep itself lives in :func:`repro.arena.tournament.duel`; the
    default output is byte-identical to the historic hardcoded version.
    """
    from repro.arena.tournament import duel

    print(duel(seed, points, reps, adversary))
    return 0


def _arena(args) -> int:
    """The `arena` subcommand group: search / tournament / replay / corpus."""
    from pathlib import Path

    from repro.arena.corpus import AttackCorpus, AttackRecord, shrink
    from repro.arena.search import evolve, random_search
    from repro.arena.space import (
        default_space,
        multichannel_space,
        protocol_channels,
        protocol_factory,
    )
    from repro.experiments import RunConfig
    from repro.experiments.registry import ExperimentReport

    config = RunConfig(jobs=args.jobs, batch=args.batch)

    if args.arena_command == "search":
        # A multichannel preset (cz-c*) implies the multichannel engine
        # and the mc_* genome families; no extra flag needed.
        n_channels = protocol_channels(args.protocol)
        space = (
            multichannel_space(quick=not args.full)
            if n_channels is not None
            else default_space(quick=not args.full)
        )
        make = protocol_factory(args.protocol)
        if args.algo == "random":
            result = random_search(
                space, make, iterations=args.iterations,
                n_reps=args.reps, seed=args.seed, config=config,
                n_channels=n_channels,
            )
            found_by = "random_search"
        else:
            result = evolve(
                space, make, generations=args.generations,
                population=args.population, n_reps=args.reps,
                seed=args.seed, config=config, n_channels=n_channels,
            )
            found_by = "evolve"
        report = ExperimentReport(
            eid="ARENA-SEARCH",
            title=f"adversary search vs {args.protocol} ({found_by})",
            anchor="Theorems 1+2 (worst case over adversaries)",
            tables=[result.table(top=args.top)],
        )
        best = result.best
        report.notes.append(
            f"best: {best.genome.describe_short()} "
            f"[{best.fingerprint[:12]}] index {best.index:.3f} "
            f"T={best.mean_T:.0f} cost={best.mean_cost:.0f}"
        )
        print(report.render())
        if args.corpus:
            corpus = AttackCorpus(args.corpus)
            record = AttackRecord.from_evaluation(
                best, protocol=args.protocol, seed=args.seed,
                baseline=result.baseline, found_by=found_by,
            )
            added = corpus.add(record)
            print(
                f"corpus: {'recorded' if added else 'already has'} "
                f"{record.fingerprint[:12]} ({len(corpus)} entries)"
            )
        if args.save:
            from repro.store import save_report

            out = save_report(report, Path(args.save) / f"{report.eid}.json")
            print(f"saved {out}")
        return 0

    if args.arena_command == "tournament":
        from repro.arena.tournament import tournament

        protocols = (
            [p.strip() for p in args.protocols.split(",") if p.strip()]
            if args.protocols else None
        )
        report = tournament(
            protocols, n_reps=args.reps, seed=args.seed, config=config
        )
        print(report.render())
        if args.save:
            from repro.store import save_report

            out = save_report(report, Path(args.save) / f"{report.eid}.json")
            print(f"saved {out}")
        return 1 if not report.all_checks_pass else 0

    corpus = AttackCorpus(args.corpus)
    space = default_space()

    if args.arena_command == "replay":
        records = (
            [corpus.get(args.fingerprint)]
            if args.fingerprint else corpus.records()
        )
        if not records:
            print("corpus is empty")
            return 0
        for record in records:
            corpus.replay(record, space, config)
            print(
                f"replayed {record.fingerprint[:12]} "
                f"({record.genome.describe_short()} vs {record.protocol}): "
                f"exact"
            )
        return 0

    # corpus: list entries (optionally shrink one)
    if args.shrink:
        record = corpus.get(args.shrink)
        small = shrink(record, space, config=config)
        changed = small.fingerprint != record.fingerprint
        if changed:
            corpus.add(small)
        print(
            f"shrunk {record.genome.describe_short()} -> "
            f"{small.genome.describe_short()} "
            f"(index {record.index:.2f} -> {small.index:.2f}"
            f"{', recorded' if changed else ', no simpler form held'})"
        )
    for record in corpus.records():
        print(
            f"{record.fingerprint[:12]}  index {record.index:8.2f}  "
            f"T {record.mean_T:8.0f}  vs {record.protocol:<13}  "
            f"{record.genome.describe_short()}  [{record.found_by}]"
        )
    if not len(corpus):
        print("corpus is empty")
    return 0


def _maybe_telemetry(args, command: str, **manifest):
    """Telemetry session for a ``--telemetry`` flag, or a no-op context.

    Yields the active sink (``None`` when telemetry is off) so callers
    can report where the event log went.
    """
    import contextlib

    if getattr(args, "telemetry", None) is None:
        return contextlib.nullcontext(None)
    from repro.telemetry import session

    return session(
        args.telemetry or None, manifest={"command": command, **manifest}
    )


def _telemetry_cmd(args) -> int:
    """The `telemetry` subcommand: summarize / tail [--follow]."""
    import json

    from repro.errors import TelemetryError
    from repro.telemetry import (
        default_telemetry_dir,
        follow_events,
        resolve_run,
        summarize,
        tail,
    )

    root = (
        args.telemetry_dir if args.telemetry_dir is not None
        else default_telemetry_dir()
    )
    try:
        run_dir = resolve_run(args.run, root)
    except TelemetryError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    if args.telemetry_command == "summarize":
        print(summarize(run_dir))
        return 0
    if not args.follow:
        print(tail(run_dir, args.lines))
        return 0
    try:
        for event in follow_events(run_dir):
            print(
                json.dumps(event, sort_keys=True, separators=(",", ":")),
                flush=True,
            )
            if event.get("ev") == "event" and event.get("name") == "run.end":
                return 0
    except KeyboardInterrupt:
        return 0
    return 0


def _serve(args) -> int:
    """The `serve` subcommand: run the sweep-job service until Ctrl-C."""
    from repro.service import JobManager, serve
    from repro.telemetry import default_telemetry_dir

    telemetry_root = (
        None if args.no_telemetry
        else (args.telemetry or default_telemetry_dir())
    )
    manager = JobManager(
        jobs=args.jobs,
        batch=args.batch,
        cache_dir=args.cache_dir,
        telemetry_root=telemetry_root,
    )

    def ready(server):
        # The bound URL goes to stdout first (and flushed) so scripts
        # that launch `serve --port 0` in the background can read it.
        print(f"serving on {server.url}", flush=True)
        print(
            f"cache: {manager.store.root}  telemetry: "
            f"{telemetry_root if telemetry_root is not None else '(off)'}  "
            f"pool: {manager.pool.jobs if manager.pool else 'serial'}",
            flush=True,
        )

    try:
        serve(manager, args.host, args.port, ready=ready)
    finally:
        manager.close()
    return 0


def _submit(args) -> int:
    """The `submit` subcommand: one job against a running service."""
    import json
    from pathlib import Path

    from repro.service import ServiceClient

    with ServiceClient(args.url) as client:
        job = client.submit(
            args.experiment, seed=args.seed, quick=not args.full,
            wait=False,
        )
        job_id = job["job_id"]
        print(f"job {job_id}: {job['state']} ({job['submissions']} submission(s))")
        if args.no_wait:
            return 0
        if args.follow:
            for event in client.events(job_id):
                print(
                    json.dumps(event, sort_keys=True, separators=(",", ":")),
                    flush=True,
                )
        body = client.result(job_id, wait=True, timeout=args.timeout)
        job = client.status(job_id)
    if args.save:
        out = Path(args.save)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_bytes(body)
        print(f"saved {out} ({len(body)} bytes)")
    else:
        sys.stdout.write(body.decode("utf-8"))
        sys.stdout.write("\n")
    stats = job.get("stats") or {}
    if stats:
        print(
            f"(elapsed {job['elapsed']:.2f}s; tasks={stats.get('tasks')} "
            f"backend={stats.get('backend') or 'cache'} "
            f"cache {stats.get('cache_hits')}/{stats.get('cache_hits', 0) + stats.get('cache_misses', 0)} warm)",
            file=sys.stderr,
        )
    return 0


def _status(args) -> int:
    """The `status` subcommand: server counters and job table."""
    import json

    from repro.service import ServiceClient

    with ServiceClient(args.url) as client:
        if args.job_id:
            print(json.dumps(client.status(args.job_id), indent=2, sort_keys=True))
            return 0
        health = client.health()
        counters = health["counters"]
        cache = counters.get("cache", {})
        print(
            f"service {args.url}: ok (v{health['version']}), "
            f"{counters['submitted']} submitted / {counters['deduped']} deduped "
            f"/ {counters['executed']} executed / {counters['failed']} failed"
        )
        print(
            f"cache: {cache.get('memory_hits', 0)} memory hits, "
            f"{cache.get('disk_hits', 0)} disk hits, "
            f"{cache.get('misses', 0)} misses, "
            f"{cache.get('entries', 0)} entries in memory"
        )
        if "pool" in counters:
            pool = counters["pool"]
            print(
                f"pool: {pool['alive_workers']}/{pool['jobs']} workers alive, "
                f"{pool['spawned_total']} spawned over the server's lifetime"
            )
        for job in client.jobs():
            spec = job["spec"]
            elapsed = (
                f"{job['elapsed']:8.2f}s" if job["elapsed"] is not None
                else "       —"
            )
            print(
                f"{job['job_id']}  {job['state']:<9} {elapsed}  "
                f"{spec['experiment']:<4} seed={spec['seed']} "
                f"quick={spec['quick']}  x{job['submissions']}"
            )
    return 0


def _parse_size(text: str | None, default: int) -> int:
    """Parse a byte count with an optional K/M/G suffix ('500M')."""
    if text is None:
        return default
    text = text.strip().upper()
    scale = {"K": 1024, "M": 1024**2, "G": 1024**3}.get(text[-1:], 1)
    digits = text[:-1] if scale != 1 else text
    return int(digits) * scale


def _cache_cmd(args) -> int:
    """The `cache` subcommand: stats / gc / clear."""
    from repro.cache import DEFAULT_GC_BYTES, CacheStore, default_cache_dir

    store = CacheStore(
        args.cache_dir if args.cache_dir is not None else default_cache_dir()
    )
    if args.cache_command == "stats":
        print(store.stats().render())
        return 0
    if args.cache_command == "gc":
        freed = store.gc(_parse_size(args.max_bytes, DEFAULT_GC_BYTES))
        print(f"freed {freed} bytes")
        print(store.stats().render())
        return 0
    freed = store.clear()
    print(f"cleared {freed} bytes")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "cache":
        return _cache_cmd(args)

    if args.command == "telemetry":
        return _telemetry_cmd(args)

    if args.command == "list":
        for exp in list_experiments():
            print(f"{exp.eid:4s} {exp.title}  [{exp.anchor}]")
        return 0

    if args.command == "duel":
        return _duel(args.seed, args.points, args.reps, args.adversary)

    if args.command == "arena":
        with _maybe_telemetry(
            args, f"arena {args.arena_command}",
            seed=getattr(args, "seed", None), jobs=args.jobs,
        ) as sink:
            code = _arena(args)
            if sink is not None:
                print(f"telemetry: {sink.run_dir}")
        return code

    if args.command in ("serve", "submit", "status"):
        from repro.errors import ServiceError

        handler = {"serve": _serve, "submit": _submit, "status": _status}
        try:
            return handler[args.command](args)
        except ServiceError as exc:
            print(str(exc), file=sys.stderr)
            return 1
        except KeyboardInterrupt:
            return 130

    if args.command == "compare":
        from repro.store import compare_reports, load_report

        diff = compare_reports(load_report(args.old), load_report(args.new))
        print(diff.render())
        return 1 if diff.is_regression else 0

    if args.command == "trace":
        return _trace(args.seed, args.jam, args.budget, args.phases)

    ids = (
        [e.eid for e in list_experiments()]
        if args.experiment.lower() == "all"
        else [args.experiment]
    )
    pool = None
    if args.pool:
        # One pool of long-lived workers shared across every experiment
        # in this invocation (most useful with `run all`): the fork
        # cost is paid once instead of once per task batch.
        from repro.engine.executor import WorkerPool

        pool = WorkerPool(args.jobs)
    failures = 0
    try:
        with _maybe_telemetry(
            args, "run",
            experiments=ids, seed=args.seed, quick=not args.full,
            jobs=args.jobs,
            config_fingerprint=RunConfig(
                seed=args.seed, quick=not args.full
            ).fingerprint(),
        ) as sink:
            for eid in ids:
                config = RunConfig(
                    seed=args.seed,
                    quick=not args.full,
                    jobs=args.jobs,
                    batch=args.batch,
                    timeout=args.timeout,
                    cache=args.cache,
                    cache_dir=args.cache_dir,
                    resume=args.resume,
                    pool=pool,
                )
                t0 = time.perf_counter()
                report = run_experiment(eid, config)
                elapsed = time.perf_counter() - t0
                print(report.render())
                if config.stats.tasks or config.stats.cache_requests:
                    print(f"({elapsed:.1f}s; {config.stats.summary()})")
                else:
                    print(f"({elapsed:.1f}s)")
                print()
                if args.save:
                    from pathlib import Path

                    from repro.store import save_report

                    out = save_report(
                        report, Path(args.save) / f"{report.eid}.json"
                    )
                    print(f"saved {out}")
                failures += sum(not ok for ok in report.checks.values())
            if sink is not None:
                print(f"telemetry: {sink.run_dir}")
    finally:
        if pool is not None:
            pool.close()
    if failures:
        print(f"{failures} check(s) FAILED", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
