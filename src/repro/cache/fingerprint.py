"""Canonical fingerprints for cacheable simulation tasks.

A cached result may only be served when *everything* that determines
the run is identical: protocol parameters, adversary parameters,
simulator limits, the derived seed path, the engine version, and the
run-result schema it was stored under.  This module turns those inputs
into a canonical, process-independent cache key.

The discipline is the same as :func:`repro.experiments.runner.stable_hash`
— hash a canonical textual form of the inputs, never Python's salted
``hash`` — but a 32-bit CRC is far too collision-prone to address
results by content (a collision would silently serve the wrong
science).  Keys are therefore SHA-256 over a canonical JSON encoding;
the CRC survives only as the cheap shard selector inside
:class:`repro.cache.store.CacheStore`.

``describe`` is deliberately conservative: anything it cannot reduce to
a canonical form (an open callable, a ``numpy`` ``Generator``, a
foreign object) raises :class:`~repro.errors.FingerprintError`, and the
runner runs the task uncached rather than risk a wrong hit.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import fields, is_dataclass
from enum import Enum

import numpy as np

from repro._version import __version__
from repro.errors import FingerprintError

__all__ = [
    "CACHE_KEY_SCHEMA",
    "describe",
    "fingerprint",
    "task_key",
]

#: Stamped into every key payload; bump to invalidate every existing
#: cache entry at once (e.g. when the key composition itself changes).
CACHE_KEY_SCHEMA = "repro.cache_key/1"

#: Attributes whose names start with this are runtime state (private
#: rng streams, scratch buffers), not configuration — never part of a
#: fingerprint.
_PRIVATE_PREFIX = "_"


def describe(obj, _depth: int = 0):
    """Reduce ``obj`` to a canonical JSON-able form, or raise.

    Handles the configuration vocabulary of this package: scalars,
    numpy scalars/arrays, lists/tuples/dicts, enums, dataclasses
    (parameter objects), and plain objects built from those (protocols,
    adversaries — described as class name plus public attributes).
    Private attributes (leading underscore) are runtime state and are
    skipped.  Everything else — callables, generators, file handles —
    raises :class:`~repro.errors.FingerprintError`: an honest "cannot
    cache this" beats a wrong cache hit.
    """
    if _depth > 16:
        raise FingerprintError("object graph too deep to fingerprint")
    # numpy scalars first: np.float64 subclasses float (and on some
    # platforms np.int64 subclasses int), and their reprs are not
    # canonical across numpy versions.
    if isinstance(obj, np.bool_):
        return bool(obj)
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, (float, np.floating)):
        # repr round-trips exactly; NaN/inf spelled out so json never
        # has to make a policy decision here.
        return ["float", repr(float(obj))]
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, np.ndarray):
        return ["ndarray", obj.dtype.str, list(obj.shape),
                describe(obj.tolist(), _depth + 1)]
    if isinstance(obj, Enum):
        return ["enum", type(obj).__qualname__, obj.name]
    if isinstance(obj, (list, tuple)):
        return [describe(v, _depth + 1) for v in obj]
    if isinstance(obj, dict):
        items = []
        for k in sorted(obj, key=str):
            if not isinstance(k, (str, int, bool)):
                raise FingerprintError(f"unhashable dict key {k!r}")
            items.append([str(k), describe(obj[k], _depth + 1)])
        return ["dict", items]
    if is_dataclass(obj) and not isinstance(obj, type):
        return [
            "dataclass",
            f"{type(obj).__module__}.{type(obj).__qualname__}",
            [[f.name, describe(getattr(obj, f.name), _depth + 1)]
             for f in fields(obj)],
        ]
    if isinstance(obj, np.random.Generator):
        raise FingerprintError("random generators have no canonical form")
    if callable(obj):
        raise FingerprintError(f"cannot fingerprint callable {obj!r}")
    attrs = getattr(obj, "__dict__", None)
    if attrs is not None:
        return [
            "object",
            f"{type(obj).__module__}.{type(obj).__qualname__}",
            [[name, describe(value, _depth + 1)]
             for name, value in sorted(attrs.items())
             if not name.startswith(_PRIVATE_PREFIX)],
        ]
    raise FingerprintError(
        f"cannot fingerprint {type(obj).__qualname__} instance {obj!r}"
    )


def fingerprint(
    *,
    kind: str,
    protocol,
    adversary,
    sim_kwargs: dict,
    experiment: str | None = None,
    quick: bool | None = None,
) -> dict:
    """Build the shared (per-task-group) part of a cache key payload.

    ``protocol`` and ``adversary`` are freshly constructed instances
    (the runner builds one extra of each purely to describe it); the
    engine version and run-result schema version ride along so that any
    change to either invalidates old entries rather than serving them.
    """
    from repro.store import RUN_RESULT_SCHEMA_VERSION

    return {
        "schema": CACHE_KEY_SCHEMA,
        "engine": __version__,
        "result_schema": RUN_RESULT_SCHEMA_VERSION,
        "kind": kind,
        "experiment": experiment,
        "quick": quick,
        "protocol": describe(protocol),
        "adversary": describe(adversary),
        "sim": describe(dict(sim_kwargs)),
    }


def task_key(base: dict, seed_path: tuple) -> str:
    """Finish a key: ``base`` (from :func:`fingerprint`) plus the
    task's derived-seed path, hashed to a 64-hex-digit SHA-256.

    ``seed_path`` is the exact entropy/label path handed to
    :func:`repro.rng.derive` — two tasks share a key only if they would
    consume the same random stream against the same configuration.
    """
    payload = dict(base, seed_path=describe(list(seed_path)))
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()
