"""E7 — Theorem 3 (cost vs T): per-node cost ``~ sqrt(T/n) * polylog``.

Workload: fix ``n`` and sweep the adversary's target epoch (hence
``T``), blocking 60% of every repetition up to the target — the
Theorem 3 analysis's worst-case shape (the last heavily-blocked epoch
``l`` sets ``T = Theta(l**2 2**l)`` and the nodes' final-epoch rates
set their cost).

Claims checked: the fitted cost-vs-T exponent is near 1/2, cost stays
``o(T)``, and delivery succeeds at every budget.
"""

from __future__ import annotations

import numpy as np

from repro.adversaries.blocking import EpochTargetJammer
from repro.analysis.scaling import fit_power_law
from repro.analysis.theory import thm4_cost
from repro.experiments.registry import ExperimentReport, RunConfig
from repro.experiments.runner import Table, sweep_epoch_targets
from repro.protocols.one_to_n import OneToNBroadcast, OneToNParams


def run(config: RunConfig | None = None) -> ExperimentReport:
    cfg = config if config is not None else RunConfig()
    seed, quick = cfg.seed, cfg.quick
    params = OneToNParams.sim()
    n = 8 if quick else 16
    targets = (11, 13, 15) if quick else (11, 12, 13, 14, 15, 16)
    n_reps = 2 if quick else 4
    q = 0.6

    points = sweep_epoch_targets(
        lambda: OneToNBroadcast(n, params),
        lambda t: EpochTargetJammer(t, q=q),
        targets, n_reps=n_reps, seed=seed,
        # The largest full-mode target runs ~10^8 slots before halting;
        # a tight cap would censor its cost and flatten the fit.
        max_slots=400_000_000, config=cfg,
    )

    table = Table(
        f"E7: per-node cost vs T at n={n} (q={q}, {n_reps} reps/point)",
        ["target_epoch", "T", "mean_cost", "max_cost", "sqrt(T/n)", "cost/T",
         "latency", "success"],
    )
    for p in points:
        table.add_row(
            int(p.setting), p.mean_T, p.mean_mean_cost, p.mean_max_cost,
            float(thm4_cost(p.mean_T, n)), p.mean_max_cost / p.mean_T,
            p.mean_slots, p.success_rate,
        )

    fit = fit_power_law(table.column("T"), table.column("mean_cost"))
    lat_fit = fit_power_law(table.column("T"), table.column("latency"),
                            n_bootstrap=0)
    report = ExperimentReport(eid="E7", title="", anchor="")
    report.tables.append(table)
    report.notes.append(f"cost-vs-T fit: {fit} (Thm 3 ideal: 0.5 x polylog drift)")
    report.notes.append(
        f"latency-vs-T fit: exponent {lat_fit.exponent:.3f} "
        "(Thm 3: latency O(T + n log^2 n), i.e. ~1 in the T-dominated regime)"
    )
    report.checks["latency linear in T (exponent in [0.85, 1.15])"] = (
        0.85 <= lat_fit.exponent <= 1.15
    )
    report.checks["exponent in [0.3, 0.75]"] = 0.3 <= fit.exponent <= 0.75
    report.checks["cost is o(T): cost/T shrinks across sweep"] = bool(
        table.column("cost/T")[-1] < table.column("cost/T")[0]
    )
    report.checks["all broadcasts succeed"] = bool(
        all(p.success_rate == 1.0 for p in points)
    )
    report.checks["no run was truncated (costs uncensored)"] = bool(
        all(p.truncated_rate == 0.0 for p in points)
    )
    return report
