"""repro — resource-competitive broadcast with jamming (SPAA 2014).

A full reproduction of Gilbert, King, Pettie, Porat, Saia, and Young,
"(Near) Optimal Resource-Competitive Broadcast with Jamming", SPAA 2014:

* the slotted single-hop channel model with jamming, collisions, and
  clear-channel assessment (:mod:`repro.channel`);
* a vectorised phase-level simulation engine (:mod:`repro.engine`);
* the paper's 1-to-1 (Figure 1) and 1-to-n (Figure 2) algorithms, the
  King–Saia–Young baseline, and naive strawmen
  (:mod:`repro.protocols`);
* an adaptive-adversary strategy zoo (:mod:`repro.adversaries`);
* the Theorem 2/4/5 lower-bound games (:mod:`repro.lowerbounds`);
* statistics, scaling-law fits, closed-form predictions, and sequential
  tests (:mod:`repro.analysis`);
* the experiment registry regenerating every theorem's claim
  (:mod:`repro.experiments`);
* slot-level tracing with replay audits (:mod:`repro.trace`), report
  persistence and regression diffs (:mod:`repro.store`), and the
  multichannel frequency-hopping extension (:mod:`repro.multichannel`).

Quickstart
----------
>>> from repro import OneToOneBroadcast, OneToOneParams, run
>>> from repro.adversaries import SuffixJammer, BudgetCap
>>> adversary = BudgetCap(SuffixJammer(0.5), budget=4096)
>>> result = run(OneToOneBroadcast(OneToOneParams.sim()), adversary, seed=42)
>>> result.success
True
>>> result.max_node_cost < result.adversary_cost  # resource competitive
True
"""

from repro._version import __version__
from repro.constants import PHI, PHI_MINUS_1
from repro.engine import RunResult, Simulator, run
from repro.protocols import (
    CombinedOneToOne,
    KSYOneToOne,
    KSYParams,
    NaiveHaltingBroadcast,
    OneToNBroadcast,
    OneToNParams,
    OneToOneBroadcast,
    OneToOneParams,
)

__all__ = [
    "PHI",
    "PHI_MINUS_1",
    "CombinedOneToOne",
    "KSYOneToOne",
    "KSYParams",
    "NaiveHaltingBroadcast",
    "OneToNBroadcast",
    "OneToNParams",
    "OneToOneBroadcast",
    "OneToOneParams",
    "RunResult",
    "Simulator",
    "run",
    "__version__",
]
