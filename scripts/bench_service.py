#!/usr/bin/env python3
"""Benchmark the sweep service and record the results.

Starts a real :class:`~repro.service.server.ServiceServer` on an
ephemeral port, then measures request throughput against it in the two
regimes that matter:

* **cold** — an empty cache: every submission is a distinct seed, so
  each request pays one full (quick) experiment execution;
* **warm** — resubmitting the *same* jobs: the dedupe index and the
  in-memory read-through layer answer without touching the executor.

Each regime is measured at two client-concurrency levels (1 and N
threads, each thread a separate :class:`ServiceClient` connection), and
the distilled numbers land in a committed ``BENCH_service.json`` at the
repo root — the warm-vs-cold ratio is the recorded evidence for the
service's reason to exist.

Usage:

    PYTHONPATH=src python scripts/bench_service.py
    PYTHONPATH=src python scripts/bench_service.py --experiment E1 \\
        --requests 12 --clients 4
"""

from __future__ import annotations

import argparse
import asyncio
import json
import platform
import sys
import tempfile
import threading
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
OUT = ROOT / "BENCH_service.json"


def start_server(manager):
    """Run a server on a daemon thread; returns (url, stop_callable)."""
    from repro.service import ServiceServer

    holder: dict = {}
    ready = threading.Event()

    def run():
        async def main():
            server = ServiceServer(manager)
            await server.start()
            holder["server"] = server
            holder["loop"] = asyncio.get_running_loop()
            ready.set()
            try:
                await server.serve_forever()
            except asyncio.CancelledError:
                pass

        asyncio.run(main())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    if not ready.wait(15):
        raise RuntimeError("service did not come up")

    def stop():
        loop = holder["loop"]
        for task in asyncio.all_tasks(loop):
            loop.call_soon_threadsafe(task.cancel)
        thread.join(timeout=15)

    return holder["server"].url, stop


def drive(url: str, experiment: str, seeds: list[int], n_clients: int) -> dict:
    """Submit one job per seed across ``n_clients`` threads; time it."""
    from repro.service import ServiceClient

    chunks = [seeds[i::n_clients] for i in range(n_clients)]
    errors: list[Exception] = []
    sizes: list[int] = []

    def worker(chunk: list[int]) -> None:
        try:
            with ServiceClient(url) as client:
                for seed in chunk:
                    job = client.submit(
                        experiment, seed=seed, wait=True, timeout=600
                    )
                    if job["state"] != "completed":
                        raise RuntimeError(f"job failed: {job.get('error')}")
                    sizes.append(len(client.result(job["job_id"])))
        except Exception as exc:  # noqa: BLE001 — reported by caller
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(c,)) for c in chunks]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - t0
    if errors:
        raise errors[0]
    return {
        "clients": n_clients,
        "requests": len(seeds),
        "total_s": round(elapsed, 6),
        "requests_per_s": round(len(seeds) / elapsed, 3),
        "mean_request_ms": round(1000 * elapsed / len(seeds), 3),
        "result_bytes": sizes[0] if sizes else 0,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--experiment", default="E1")
    parser.add_argument(
        "--requests", type=int, default=8,
        help="distinct jobs per regime (default 8)",
    )
    parser.add_argument(
        "--clients", type=int, default=4,
        help="threads in the concurrent-client level (default 4)",
    )
    parser.add_argument(
        "--jobs", type=int, default=0,
        help="service worker pool size (default 0 = one per core)",
    )
    args = parser.parse_args()

    sys.path.insert(0, str(ROOT / "src"))
    from repro.service import JobManager

    seeds = list(range(1000, 1000 + args.requests))
    record: dict = {
        "experiment": args.experiment,
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "levels": {},
    }

    with tempfile.TemporaryDirectory() as tmp:
        manager = JobManager(jobs=args.jobs, cache_dir=Path(tmp) / "cache")
        url, stop = start_server(manager)
        print(f"service on {url} (pool={args.jobs or 'per-core'})")
        try:
            for n_clients in (1, args.clients):
                level: dict = {}
                # Cold needs unexplored seeds per level; shift the range
                # so level 2's cold pass is not warmed by level 1's.
                offset = 0 if n_clients == 1 else args.requests
                cold_seeds = [s + offset for s in seeds]
                level["cold"] = drive(
                    url, args.experiment, cold_seeds, n_clients
                )
                print(
                    f"  {n_clients} client(s) cold: "
                    f"{level['cold']['requests_per_s']:.2f} req/s"
                )
                level["warm"] = drive(
                    url, args.experiment, cold_seeds, n_clients
                )
                print(
                    f"  {n_clients} client(s) warm: "
                    f"{level['warm']['requests_per_s']:.2f} req/s"
                )
                level["warm_speedup"] = round(
                    level["warm"]["requests_per_s"]
                    / level["cold"]["requests_per_s"], 2,
                )
                record["levels"][f"clients_{n_clients}"] = level
            counters = manager.counters()
            record["server_counters"] = {
                "submitted": counters["submitted"],
                "deduped": counters["deduped"],
                "executed": counters["executed"],
                "cache": counters["cache"],
            }
            if "pool" in counters:
                record["server_counters"]["pool"] = counters["pool"]
        finally:
            stop()
            manager.close()

    OUT.write_text(json.dumps(record, indent=1, sort_keys=True) + "\n")
    print(f"wrote {OUT}")
    for name, level in record["levels"].items():
        print(
            f"  {name}: cold {level['cold']['requests_per_s']:.2f} req/s, "
            f"warm {level['warm']['requests_per_s']:.2f} req/s "
            f"({level['warm_speedup']}x)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
