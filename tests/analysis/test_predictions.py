"""Cross-validation: closed-form predictions vs the simulator.

These are the strongest correctness tests in the suite — the analysis
formulas and the simulator are implemented independently, so agreement
within sampling noise validates both.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.adversaries.basic import SilentAdversary
from repro.adversaries.blocking import EpochTargetJammer
from repro.analysis.history import by_epoch
from repro.analysis.predictions import (
    fig1_blocking_adversary_cost,
    fig1_cost_through_epoch,
    fig1_epoch_cost,
    fig2_epoch_cost_pinned,
    fig2_equilibrium_rate,
    fig2_predicted_termination_epoch,
    fig2_repetition_cost,
)
from repro.engine.simulator import Simulator
from repro.errors import AnalysisError
from repro.protocols.one_to_n import OneToNBroadcast, OneToNParams
from repro.protocols.one_to_one import OneToOneBroadcast, OneToOneParams


class TestFig1Formulas:
    def test_epoch_cost_formula(self):
        params = OneToOneParams.sim()
        i = params.first_epoch + 3
        expected = 2 * params.send_probability(i) * 2**i
        assert fig1_epoch_cost(params, i) == pytest.approx(expected)

    def test_geometric_sum_dominated_by_last_term(self):
        params = OneToOneParams.sim()
        last = params.first_epoch + 10
        total = fig1_cost_through_epoch(params, last)
        assert total < 4.0 * fig1_epoch_cost(params, last)

    def test_domain(self):
        params = OneToOneParams.sim()
        with pytest.raises(AnalysisError):
            fig1_cost_through_epoch(params, params.first_epoch - 1)
        with pytest.raises(AnalysisError):
            fig1_blocking_adversary_cost(params, params.first_epoch - 1)


class TestFig1SimulatorAgreement:
    def test_blocked_run_matches_predictions(self):
        """Under full listener-blocking to epoch l, both parties run all
        epochs through l+1-ish; per-party cost and adversary cost must
        match the closed forms within sampling noise."""
        params = OneToOneParams.sim()
        target = params.first_epoch + 5
        reps = 12
        costs, Ts = [], []
        for s in range(reps):
            sim = Simulator(
                OneToOneBroadcast(params),
                EpochTargetJammer(target, q=1.0, target_listener=True),
            )
            res = sim.run(s)
            assert res.success
            costs.append(res.max_node_cost)
            Ts.append(res.adversary_cost)

        predicted_T = fig1_blocking_adversary_cost(params, target)
        assert np.mean(Ts) == pytest.approx(predicted_T, rel=0.01)

        # Parties run at least through `target`, usually one epoch more.
        lo = fig1_cost_through_epoch(params, target)
        hi = 2.0 * fig1_cost_through_epoch(params, target + 1)
        assert lo * 0.7 < np.mean(costs) < hi

    def test_per_epoch_history_matches(self):
        params = OneToOneParams.sim()
        target = params.first_epoch + 4
        sim = Simulator(
            OneToOneBroadcast(params),
            EpochTargetJammer(target, q=1.0, target_listener=True),
            keep_history=True,
        )
        # Average per-epoch node costs over several runs.
        per_epoch: dict[int, list[float]] = {}
        for s in range(10):
            res = sim.run(s)
            for row in by_epoch(res.phase_history):
                per_epoch.setdefault(row.epoch, []).append(row.node_total)
        for epoch in range(params.first_epoch, target + 1):
            # node_total sums Alice and Bob: 2x the per-party formula.
            predicted = 2 * fig1_epoch_cost(params, epoch)
            measured = np.mean(per_epoch[epoch])
            assert measured == pytest.approx(predicted, rel=0.25)


class TestFig2Formulas:
    def test_repetition_cost_unsaturated(self):
        params = OneToNParams.sim()
        i = 14
        s = 4.0
        expected = s + s * params.d * i**params.listen_exp
        assert fig2_repetition_cost(params, i, s) == pytest.approx(expected)

    def test_repetition_cost_saturated(self):
        params = OneToNParams.sim()
        i = params.first_epoch  # tiny window: listening capped at L
        L = 2**i
        cost = fig2_repetition_cost(params, i, 16.0)
        assert cost <= 2 * L

    def test_pinned_epoch_cost(self):
        params = OneToNParams.sim()
        i = 10
        per_rep = fig2_repetition_cost(params, i, params.s_init)
        assert fig2_epoch_cost_pinned(params, i) == pytest.approx(
            params.n_repetitions(i) * per_rep
        )

    def test_equilibrium_rate_scales(self):
        params = OneToNParams.sim()
        assert fig2_equilibrium_rate(params, 12, 16) == pytest.approx(
            2 * fig2_equilibrium_rate(params, 11, 16)
        )
        assert fig2_equilibrium_rate(params, 12, 32) == pytest.approx(
            fig2_equilibrium_rate(params, 12, 16) / 2
        )

    def test_domain(self):
        params = OneToNParams.sim()
        with pytest.raises(AnalysisError):
            fig2_repetition_cost(params, 10, 0.0)
        with pytest.raises(AnalysisError):
            fig2_equilibrium_rate(params, 10, 0)
        with pytest.raises(AnalysisError):
            fig2_predicted_termination_epoch(params, 0)


class TestFig2SimulatorAgreement:
    @pytest.mark.parametrize("n", [4, 16, 64])
    def test_termination_epoch_within_band(self, n):
        params = OneToNParams.sim()
        predicted = fig2_predicted_termination_epoch(params, n)
        res = Simulator(
            OneToNBroadcast(n, params), SilentAdversary(), max_slots=40_000_000
        ).run(n)
        measured = res.stats["final_epoch"]
        assert abs(measured - predicted) <= 2, (measured, predicted)

    def test_blocked_epochs_cost_pinned_rate(self):
        """During fully blocked epochs rates stay at s_init; measured
        per-epoch node cost must match the pinned-rate formula."""
        n = 8
        params = OneToNParams.sim()
        target = 10
        sim = Simulator(
            OneToNBroadcast(n, params),
            EpochTargetJammer(target, q=1.0),
            keep_history=True,
        )
        res = sim.run(3)
        rows = {r.epoch: r for r in by_epoch(res.phase_history)}
        for epoch in (8, 9, 10):
            predicted = n * fig2_epoch_cost_pinned(params, epoch)
            assert rows[epoch].node_total == pytest.approx(predicted, rel=0.2)
