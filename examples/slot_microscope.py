#!/usr/bin/env python3
"""Slot microscope: watch Figure 1 fight a jammer, slot by slot.

Records a complete 1-to-1 run at full slot resolution, replays it to
audit the engine (the replay must reproduce every observation), and
prints per-slot timelines of the interesting phases — the send phase
where the jam wall blocks delivery, and the one where the message
finally slips through.

Glyphs: S = delivered transmission, x = transmission lost to jamming or
collision, M = heard the message, n = heard noise, . = heard a clear
slot, space = asleep, # = jammed slot.

Run:
    python examples/slot_microscope.py
"""

from __future__ import annotations

from repro import OneToOneBroadcast, OneToOneParams
from repro.adversaries import BudgetCap, SuffixJammer
from repro.engine import Simulator
from repro.trace import TraceRecorder, timeline, verify_trace


def main() -> None:
    params = OneToOneParams.sim(epsilon=0.1)
    recorder = TraceRecorder()
    sim = Simulator(
        OneToOneBroadcast(params),
        BudgetCap(SuffixJammer(0.75), budget=600),
        trace=recorder,
    )
    result = sim.run(seed=7)

    verified = verify_trace(recorder)
    print(f"run: success={result.success}, phases={result.phases}, "
          f"T={result.adversary_cost}, costs={list(result.node_costs)}")
    print(f"audit: replayed {verified} phases — engine observations "
          f"reproduce exactly.")
    print()
    print("node 0 is Alice (sender), node 1 is Bob (listener).")
    print()

    # Show the first phase (jam suffix visible) and the delivering phase.
    shown = 0
    for t in recorder.phases:
        is_delivery = (t.heard[1, 2] > 0) if t.tags["kind"] == "send" else False
        if t.phase_index == 0 or is_delivery:
            print(timeline(t, max_width=100))
            print()
            shown += 1
        if shown >= 2 and t.phase_index > 0:
            break

    print("Reading the first panel: Alice's transmissions late in the")
    print("phase die in the jam wall (x under #); Bob hears noise (n)")
    print("there — which is exactly why he keeps running.  In the")
    print("delivery panel an S meets Bob's M on a clear slot.")


if __name__ == "__main__":
    main()
