"""Theorem 2's lower-bound adversary.

"The adversary jams if and only if it has not already jammed T slots
and ``a_i * b_i > 1/T``" — where ``a_i`` and ``b_i`` are the per-slot
send/listen probabilities the two parties committed to.  Against this
strategy any 1-to-1 protocol succeeding with probability ``1 - eps``
satisfies ``E(A) * E(B) > (1 - O(eps)) T``.

Our protocols use phase-constant probabilities, so the slot-by-slot
rule collapses to: jam the phase's slots from the front while the
product exceeds the threshold and budget remains.
"""

from __future__ import annotations

import numpy as np

from repro.adversaries.base import Adversary, AdversaryContext
from repro.channel.events import JamPlan
from repro.errors import ConfigurationError

__all__ = ["ReactiveProductJammer"]


class ReactiveProductJammer(Adversary):
    """Jams while ``max(a) * max(b) > 1/T`` and budget remains.

    Parameters
    ----------
    budget:
        The adversary's total budget ``T`` (announced in the lower-bound
        game, unknown to the nodes in our runs).
    group:
        Jam only this group; by default jams the listening party via the
        ``"listener_group"`` tag when available, else channel-wide.
    """

    def __init__(self, budget: int, group: int | None = None) -> None:
        if budget < 1:
            raise ConfigurationError(f"budget must be >= 1, got {budget}")
        self.budget = budget
        self.group = group

    def plan_phase(self, ctx: AdversaryContext) -> JamPlan:
        remaining = self.budget - ctx.spent
        if remaining <= 0:
            return JamPlan.silent(ctx.length)
        a = float(np.max(ctx.send_probs)) if len(ctx.send_probs) else 0.0
        b = float(np.max(ctx.listen_probs)) if len(ctx.listen_probs) else 0.0
        if a * b <= 1.0 / self.budget:
            return JamPlan.silent(ctx.length)
        n_jam = min(ctx.length, remaining)
        group = self.group
        if group is None and "listener_group" in ctx.tags:
            group = int(ctx.tags["listener_group"])
        return JamPlan.prefix(ctx.length, n_jam, group=group)
