"""Readers for telemetry run directories: summarize and tail.

The summarizer is intentionally schema-light: it aggregates whatever
span/counter/gauge/event names the instrumented code emitted, so a new
instrumentation site shows up in ``repro-bcast telemetry summarize``
without touching this module.  Torn trailing lines (a worker killed
mid-append) are skipped exactly as the result cache does.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import TelemetryError

__all__ = [
    "find_runs",
    "latest_run",
    "read_events",
    "read_manifest",
    "resolve_run",
    "summarize",
    "tail",
]


def find_runs(root: str | Path) -> list[Path]:
    """Run directories under ``root``, oldest first.

    Run ids start with a UTC timestamp, so lexicographic order is
    creation order.
    """
    root = Path(root)
    if not root.is_dir():
        return []
    return sorted(
        p for p in root.iterdir()
        if p.is_dir() and (
            (p / "manifest.json").is_file() or (p / "events.jsonl").is_file()
        )
    )


def latest_run(root: str | Path) -> Path:
    """The most recent run under ``root``; raises when there is none.

    A ``root`` that is itself a run directory (a ``bound_session`` dir,
    e.g. a service job's ``<telemetry_root>/<job_id>``) resolves to
    itself, so ``telemetry summarize|tail --dir`` work on both layouts.
    """
    root = Path(root)
    if (root / "manifest.json").is_file() or (root / "events.jsonl").is_file():
        return root
    runs = find_runs(root)
    if not runs:
        raise TelemetryError(
            f"no telemetry runs under {root} (run with --telemetry first)"
        )
    return runs[-1]


def resolve_run(run: str | Path | None, root: str | Path) -> Path:
    """Map a CLI run argument to a run directory.

    ``None`` means the latest run under ``root``; otherwise ``run`` may
    be a run id under ``root`` or a path to a run directory.
    """
    if run is None:
        return latest_run(root)
    candidate = Path(root) / str(run)
    if candidate.is_dir():
        return candidate
    candidate = Path(run)
    if candidate.is_dir():
        return candidate
    raise TelemetryError(f"no telemetry run {run!r} under {root}")


def read_manifest(run_dir: str | Path) -> dict:
    """The run's manifest, or ``{}`` when it was never written."""
    path = Path(run_dir) / "manifest.json"
    if not path.is_file():
        return {}
    return json.loads(path.read_text())


def read_events(run_dir: str | Path) -> list[dict]:
    """Every parseable event record, in file (= append) order."""
    path = Path(run_dir) / "events.jsonl"
    if not path.is_file():
        return []
    events = []
    for line in path.read_bytes().splitlines():
        if not line.strip():
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError:
            continue  # torn append (killed worker); skip
    return events


def _fmt_seconds(s: float) -> float:
    return round(float(s), 6)


def summarize(run_dir: str | Path) -> str:
    """Human summary of one run: manifest header + aggregate tables."""
    from repro.experiments.runner import Table  # lazy: avoids an import cycle

    run_dir = Path(run_dir)
    manifest = read_manifest(run_dir)
    events = read_events(run_dir)

    lines = [f"=== telemetry run {run_dir.name}  ({run_dir})"]
    for key in ("created", "git_rev", "engine_version", "command",
                "experiments", "seed", "config_fingerprint"):
        if key in manifest and manifest[key] is not None:
            lines.append(f"{key}: {manifest[key]}")
    host = manifest.get("host") or {}
    if host:
        lines.append(
            f"host: {host.get('hostname', '?')} "
            f"({host.get('platform', '?')}, python {host.get('python', '?')}, "
            f"{host.get('cpus', '?')} cpus)"
        )
    pids = sorted({e.get("pid") for e in events if "pid" in e})
    lines.append(f"{len(events)} events from {len(pids)} process(es)")
    lines.append("")

    spans: dict[str, dict] = {}
    counters: dict[str, float] = {}
    gauges: dict[str, list[float]] = {}
    points: dict[str, int] = {}
    for e in events:
        name = e.get("name", "?")
        kind = e.get("ev")
        if kind == "span":
            agg = spans.setdefault(
                name, {"n": 0, "total": 0.0, "max": 0.0, "outcomes": {}}
            )
            dur = float(e.get("dur", 0.0))
            agg["n"] += 1
            agg["total"] += dur
            agg["max"] = max(agg["max"], dur)
            outcome = (e.get("attrs") or {}).get("outcome")
            if outcome is not None:
                agg["outcomes"][outcome] = agg["outcomes"].get(outcome, 0) + 1
        elif kind == "counter":
            counters[name] = counters.get(name, 0) + float(e.get("value", 0))
        elif kind == "gauge":
            gauges.setdefault(name, []).append(float(e.get("value", 0.0)))
        elif kind == "event":
            points[name] = points.get(name, 0) + 1

    if spans:
        table = Table(
            "spans", ["name", "count", "total_s", "mean_ms", "max_ms", "outcomes"]
        )
        for name in sorted(spans):
            agg = spans[name]
            outcomes = " ".join(
                f"{k}:{v}" for k, v in sorted(agg["outcomes"].items())
            ) or "-"
            table.add_row(
                name, agg["n"], _fmt_seconds(agg["total"]),
                round(1000 * agg["total"] / agg["n"], 3),
                round(1000 * agg["max"], 3), outcomes,
            )
        lines.append(table.render())
        lines.append("")
    if counters:
        table = Table("counters", ["name", "total"])
        for name in sorted(counters):
            value = counters[name]
            table.add_row(name, int(value) if value == int(value) else value)
        lines.append(table.render())
        lines.append("")
    if gauges:
        table = Table("gauges", ["name", "n", "first", "last", "min", "max"])
        for name in sorted(gauges):
            series = gauges[name]
            table.add_row(
                name, len(series), series[0], series[-1],
                min(series), max(series),
            )
        lines.append(table.render())
        lines.append("")
    if points:
        table = Table("events", ["name", "count"])
        for name in sorted(points):
            table.add_row(name, points[name])
        lines.append(table.render())
        lines.append("")
    if not (spans or counters or gauges or points):
        lines.append("(no events recorded)")
    return "\n".join(lines).rstrip("\n")


def tail(run_dir: str | Path, n: int = 20) -> str:
    """The last ``n`` raw event records, one compact JSON line each."""
    if n <= 0:
        return ""
    events = read_events(run_dir)
    return "\n".join(
        json.dumps(e, sort_keys=True, separators=(",", ":"))
        for e in events[-n:]
    )
