"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator, fresh per test."""
    return np.random.default_rng(12345)


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running statistical test (still run by default)"
    )
