"""Zero-dependency structured observability for the whole stack.

Resource-competitive experiments are measurements of *spend* — the same
discipline the paper applies to nodes vs. the jammer has to apply to
our own wall-clock and cache budget, or performance work is guesswork.
This package is the measurement substrate: a process-safe JSONL event
sink (:mod:`repro.telemetry.sink`) with span/counter/gauge records and
a per-run manifest, plus readers (:mod:`repro.telemetry.summary`) that
render a human summary from the event log.

Instrumented subsystems (all behind a single ``get_sink() is None``
check when telemetry is off):

* :mod:`repro.engine.executor` — per-task spans with
  attempt/timeout/crash outcome, batch spans, worker lifecycle events;
* :mod:`repro.cache` — hit/miss/byte counters, per-append lock-wait;
* :mod:`repro.engine.simulator` — per-run phase-resolve timing and
  events-per-slot ratio;
* :mod:`repro.arena.search` — per-generation best-fitness gauges.

Enable from the CLI with ``repro-bcast run E1 --telemetry`` (or
``--telemetry DIR``), then ``repro-bcast telemetry summarize``; from
the API, either pass ``RunConfig(telemetry=DIR)`` or wrap calls in
:func:`session`.  Reports stay byte-identical with telemetry on or off
— the determinism CI gate enforces it.
"""

from __future__ import annotations

from repro.telemetry.follow import follow_events, read_new_events
from repro.telemetry.sink import (
    TELEMETRY_DIR_ENV,
    TELEMETRY_SCHEMA,
    TelemetrySink,
    activate,
    bound_session,
    deactivate,
    default_telemetry_dir,
    get_sink,
    session,
)
from repro.telemetry.summary import (
    find_runs,
    latest_run,
    read_events,
    read_manifest,
    resolve_run,
    summarize,
    tail,
)

__all__ = [
    "TELEMETRY_DIR_ENV",
    "TELEMETRY_SCHEMA",
    "TelemetrySink",
    "activate",
    "bound_session",
    "deactivate",
    "default_telemetry_dir",
    "find_runs",
    "follow_events",
    "get_sink",
    "latest_run",
    "read_events",
    "read_manifest",
    "read_new_events",
    "resolve_run",
    "session",
    "summarize",
    "tail",
]
