"""Exception hierarchy for the :mod:`repro` package.

All library errors derive from :class:`ReproError` so callers can catch
everything raised by this package with a single ``except`` clause while
still letting programming errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ConfigurationError(ReproError):
    """A parameter object or protocol/adversary configuration is invalid.

    Raised eagerly at construction time (never mid-simulation) so that a
    long sweep cannot die hours in because of a bad constant.
    """


class SimulationError(ReproError):
    """An internal invariant of the simulation engine was violated."""


class ProtocolError(ReproError):
    """A protocol implementation violated the engine's phase contract.

    Examples: emitting a phase after reporting completion, returning
    send/listen probabilities outside ``[0, 1]``, or emitting a phase of
    non-positive length.
    """


class AdversaryError(ReproError):
    """An adversary produced an invalid jam/spoof plan.

    Examples: jam slots outside the phase, a plan for a group that does
    not exist, or negative budget use.
    """


class BudgetExceededError(SimulationError):
    """A run exceeded the configured slot or phase safety cap.

    Raised only when the caller asked for strict enforcement; by default
    runs are truncated and flagged instead, because several experiments
    deliberately probe the runaway regime.
    """


class ExecutorError(ReproError):
    """The parallel executor could not complete a task batch.

    Raised when a task keeps timing out or crashing its worker past the
    configured retry budget, or when a task raises an exception inside
    a worker process (the original error message is embedded).
    """


class AnalysisError(ReproError):
    """An analysis routine received data it cannot work with.

    Example: a power-law fit over fewer than two distinct x values.
    """


class CacheError(ReproError):
    """The result cache could not read or write an entry.

    Examples: an unwritable cache directory, or a stored record whose
    schema no longer matches the current serializer.
    """


class TelemetryError(ReproError):
    """A telemetry run directory could not be located or read.

    Raised by the summarize/tail readers (no runs recorded, unknown run
    id) — never by the write path, which must not be able to abort an
    experiment.
    """


class ServiceError(ReproError):
    """The sweep service could not accept, run, or report a job.

    Raised by the job manager (bad job spec, unknown job id, submitting
    to a closed manager) and surfaced by the client library when the
    server returns an error response.
    """


class FingerprintError(CacheError):
    """A task's inputs cannot be canonically fingerprinted.

    Raised when a protocol or adversary carries state with no stable
    canonical form (open callables, random generators, foreign
    objects).  The runner treats such tasks as uncacheable and simply
    executes them, so this error never aborts an experiment.
    """
