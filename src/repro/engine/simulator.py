"""The run loop: protocol × adversary → costs, latency, outcome.

One :func:`run` call plays a complete execution of a protocol against an
adversary on the slotted channel, with full energy accounting.  The loop
is phase-granular; all slot-level work happens vectorised inside
:func:`repro.channel.model.resolve_phase`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.adversaries.base import Adversary, AdversaryContext
from repro.channel.accounting import EnergyLedger
from repro.channel.model import get_resolver
from repro.engine.phase import PhaseObservation
from repro.engine.sampling import sample_action_events
from repro.errors import BudgetExceededError, ProtocolError
from repro.protocols.base import Protocol
from repro.rng import RngFactory
from repro.telemetry.sink import get_sink

__all__ = ["Simulator", "RunResult", "run"]


@dataclass(frozen=True)
class RunResult:
    """Outcome of one complete execution.

    Attributes
    ----------
    node_costs:
        ``(n_nodes,)`` total energy per good node.
    adversary_cost:
        The adversary's total spend — the paper's ``T``.
    slots:
        Total latency in slots (sum of phase lengths until the last node
        halted).
    phases:
        Number of phases executed.
    truncated:
        True when the run hit the safety cap instead of halting; such
        runs should be treated as censored observations.
    stats:
        The protocol's :meth:`~repro.protocols.base.Protocol.summary`.
    phase_history:
        Per-phase cost records (empty when history is disabled).
    """

    node_costs: np.ndarray
    adversary_cost: int
    slots: int
    phases: int
    truncated: bool
    stats: dict
    phase_history: list = field(default_factory=list)
    node_send_costs: np.ndarray | None = None
    node_listen_costs: np.ndarray | None = None

    @property
    def max_node_cost(self) -> int:
        """``max_u C(u)`` — the resource-competitive cost measure."""
        return int(self.node_costs.max())

    def weighted_node_costs(self, model) -> np.ndarray:
        """Per-node energy under a weighted radio
        :class:`~repro.channel.accounting.CostModel`."""
        if self.node_send_costs is None or self.node_listen_costs is None:
            raise ValueError("run was recorded without a send/listen split")
        return model.weight(self.node_send_costs, self.node_listen_costs)

    @property
    def success(self) -> bool:
        return bool(self.stats.get("success", False))

    @property
    def T(self) -> int:
        """Alias for :attr:`adversary_cost`, matching the paper's ``T``."""
        return self.adversary_cost


class Simulator:
    """Reusable runner binding a protocol, an adversary, and limits.

    Parameters
    ----------
    protocol / adversary:
        The parties.  Both are reset at the start of every :meth:`run`.
    max_slots / max_phases:
        Safety caps.  By default a run that exceeds them is truncated
        and flagged; with ``strict=True`` it raises
        :class:`~repro.errors.BudgetExceededError` instead.
    keep_history:
        Keep per-phase cost records on the result (off for big sweeps).
    trace:
        Optional :class:`repro.trace.TraceRecorder` capturing raw
        slot-level material of every phase (small runs only).
    dense:
        Resolver selection: ``False`` (default) uses the sparse
        O(events) kernel, ``True`` the dense O(L) oracle
        (:mod:`repro.channel.model_dense`), ``None`` defers to the
        ``REPRO_DENSE_RESOLVER`` environment variable.  Both produce
        bit-identical outcomes; the oracle exists for differential
        testing and byte-identity CI gates.
    """

    def __init__(
        self,
        protocol: Protocol,
        adversary: Adversary,
        *,
        max_slots: int = 50_000_000,
        max_phases: int = 200_000,
        strict: bool = False,
        keep_history: bool = False,
        trace=None,
        dense: bool | None = None,
    ) -> None:
        self.protocol = protocol
        self.adversary = adversary
        self.max_slots = max_slots
        self.max_phases = max_phases
        self.strict = strict
        self.keep_history = keep_history
        self.trace = trace
        self.resolve_phase = get_resolver(dense)

    def run(self, seed: int | np.random.Generator | None = None) -> RunResult:
        """Play one execution and return its :class:`RunResult`."""
        factory = RngFactory(seed)
        protocol_rng = factory.get("protocol")
        adversary_rng = factory.get("adversary")

        protocol = self.protocol
        adversary = self.adversary
        protocol.reset(protocol_rng)

        ledger = EnergyLedger(protocol.n_nodes, keep_history=self.keep_history)
        slots = 0
        phases = 0
        truncated = False
        n_groups_seen = 1
        # Telemetry: aggregate per-phase resolve timing into one span
        # per run — a phase-granular log would dwarf the science output
        # at 200k-phase scale.  ``sink is None`` is the entire disabled
        # overhead.
        sink = get_sink()
        resolve_time = 0.0
        n_events = 0

        spec = protocol.next_phase()
        if spec is not None:
            n_groups_seen = (
                int(spec.groups.max()) + 1 if spec.groups is not None else 1
            )
        adversary.begin_run(protocol.n_nodes, n_groups_seen, adversary_rng)

        while spec is not None:
            if spec.n_nodes != protocol.n_nodes:
                raise ProtocolError(
                    f"phase for {spec.n_nodes} nodes from a protocol with "
                    f"{protocol.n_nodes}"
                )
            if slots + spec.length > self.max_slots or phases >= self.max_phases:
                if self.strict:
                    raise BudgetExceededError(
                        f"run exceeded caps (slots={slots}, phases={phases})"
                    )
                truncated = True
                break

            sends, listens = sample_action_events(
                protocol_rng,
                spec.length,
                spec.send_probs,
                spec.send_kinds,
                spec.listen_probs,
            )
            ctx = AdversaryContext(
                phase_index=phases,
                length=spec.length,
                n_nodes=protocol.n_nodes,
                n_groups=n_groups_seen,
                tags=dict(spec.tags),
                sends=sends,
                listens=listens,
                send_probs=spec.send_probs,
                listen_probs=spec.listen_probs,
                spent=ledger.adversary_cost,
            )
            plan = adversary.plan_phase(ctx)
            if sink is not None:
                t0 = time.perf_counter()
            outcome = self.resolve_phase(
                spec.length,
                protocol.n_nodes,
                sends,
                listens,
                plan,
                groups=spec.groups,
            )
            if sink is not None:
                resolve_time += time.perf_counter() - t0
                n_events += len(sends) + len(listens)
            ledger.charge_phase(
                spec.length,
                outcome.send_cost + outcome.listen_cost,
                outcome.adversary_cost,
                tags=spec.tags,
                send_costs=outcome.send_cost,
                listen_costs=outcome.listen_cost,
            )
            if self.trace is not None:
                self.trace.record(
                    phases, spec.length, protocol.n_nodes, spec.tags,
                    sends, listens, plan, spec.groups, outcome,
                )
            slots += spec.length
            phases += 1

            protocol.observe(
                PhaseObservation(
                    length=spec.length,
                    heard=outcome.heard,
                    send_cost=outcome.send_cost,
                    listen_cost=outcome.listen_cost,
                    tags=dict(spec.tags),
                )
            )
            adversary.observe_outcome(ctx, outcome)
            spec = protocol.next_phase()

        if spec is None and not protocol.done:
            raise ProtocolError("protocol returned no phase but reports not done")

        ledger.check_conservation()
        if sink is not None:
            sink.span_event(
                "sim.run", resolve_time,
                phases=phases, slots=slots, events=n_events,
                events_per_slot=round(n_events / slots, 6) if slots else 0.0,
            )
        return RunResult(
            node_costs=ledger.node_costs,
            adversary_cost=ledger.adversary_cost,
            slots=slots,
            phases=phases,
            truncated=truncated,
            stats=protocol.summary(),
            phase_history=ledger.history,
            node_send_costs=ledger.send_costs,
            node_listen_costs=ledger.listen_costs,
        )


def run(
    protocol: Protocol,
    adversary: Adversary,
    seed: int | np.random.Generator | None = None,
    **kwargs,
) -> RunResult:
    """One-shot convenience wrapper around :class:`Simulator`.

    Examples
    --------
    >>> from repro.protocols import OneToOneBroadcast, OneToOneParams
    >>> from repro.adversaries import SilentAdversary
    >>> result = run(OneToOneBroadcast(OneToOneParams.sim()), SilentAdversary(), seed=7)
    >>> result.success
    True
    """
    return Simulator(protocol, adversary, **kwargs).run(seed)
