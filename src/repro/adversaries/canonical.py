"""Canonical description round-trip for the adversary zoo.

:func:`repro.cache.fingerprint.describe` already reduces every zoo
strategy to a canonical JSON-able form (class name plus public
attributes); this module adds the *inverse* — rebuilding an equivalent
instance from that form — and makes the uncacheable residue explicit.

The round-trip contract, pinned by ``tests/adversaries/test_canonical.py``::

    describe(rebuild_adversary(describe(adv))) == describe(adv)

holds for every strategy in :data:`ZOO_CLASSES` whose configuration is
scalar (which is all of them, as constructed by their public
constructors).  It is what lets the arena's attack corpus store a found
adversary as data and replay it exactly in a later process, and what
the result cache's fingerprints assume when they treat a description as
a complete identity.

What cannot round-trip — and therefore silently falls out of the cache
via :class:`~repro.errors.FingerprintError` — is listed in
:data:`UNCACHEABLE_FORMS`.  Use :func:`is_cacheable` to test an
instance instead of guessing.
"""

from __future__ import annotations

import hashlib
import json
from enum import Enum

import numpy as np

from repro.adversaries.base import Adversary
from repro.adversaries.basic import (
    PeriodicJammer,
    RandomJammer,
    SilentAdversary,
    SuffixJammer,
)
from repro.adversaries.blocking import EpochTargetJammer, QBlockingJammer
from repro.adversaries.budget import BudgetCap
from repro.adversaries.halving import HalvingAttacker
from repro.adversaries.reactive import ReactiveProductJammer
from repro.adversaries.spliced import SplicedScheduleJammer
from repro.adversaries.spoofing import SpoofingAdversary
from repro.adversaries.stochastic import (
    GreedyAdaptiveJammer,
    MarkovJammer,
    WindowedJammer,
)
from repro.adversaries.suppressor import BroadcastSuppressor
from repro.cache.fingerprint import describe
from repro.channel.events import TxKind
from repro.errors import CacheError, FingerprintError
from repro.multichannel.adversaries import (
    ChannelBandJammer,
    ChannelFollowerJammer,
    ChannelSweepJammer,
    FractionJammer,
    MCBudgetCap,
    MCEpochTargetJammer,
)

__all__ = [
    "UNCACHEABLE_FORMS",
    "ZOO_CLASSES",
    "adversary_fingerprint",
    "is_cacheable",
    "rebuild_adversary",
    "undescribe",
]

#: Every zoo strategy, keyed by class name — the vocabulary
#: :func:`rebuild_adversary` accepts.  Each class's constructor keywords
#: coincide with its public attributes (a deliberate invariant: it is
#: what makes ``describe`` output a complete constructor call).
#: Single- and multi-channel strategies share one namespace: a corpus
#: record or cache fingerprint identifies its strategy the same way
#: regardless of which engine consumes it.
ZOO_CLASSES: dict[str, type] = {
    cls.__name__: cls
    for cls in (
        BroadcastSuppressor,
        BudgetCap,
        ChannelBandJammer,
        ChannelFollowerJammer,
        ChannelSweepJammer,
        EpochTargetJammer,
        FractionJammer,
        GreedyAdaptiveJammer,
        HalvingAttacker,
        MarkovJammer,
        MCBudgetCap,
        MCEpochTargetJammer,
        PeriodicJammer,
        QBlockingJammer,
        RandomJammer,
        ReactiveProductJammer,
        SilentAdversary,
        SplicedScheduleJammer,
        SpoofingAdversary,
        SuffixJammer,
        WindowedJammer,
    )
}

#: Enum types that may appear inside adversary configuration.
_ENUMS: dict[str, type[Enum]] = {"TxKind": TxKind}

#: The explicit uncacheable set: configuration forms that break the
#: round-trip.  The first two have no canonical description at all
#: (``describe`` raises, so tasks built from them run correctly but are
#: never served from or written to the result cache); the third
#: describes but cannot be rebuilt, so it cannot live in the attack
#: corpus.  Anything not listed here is expected to round-trip.  Note
#: that a strategy's *own* generator (``Adversary.rng``) hides behind a
#: private attribute, which ``describe`` skips — stateful zoo members
#: stay cacheable.
UNCACHEABLE_FORMS: tuple[tuple[str, str], ...] = (
    ("QBlockingJammer(predicate=<callable>)",
     "an open callable has no canonical form (describe raises)"),
    ("any adversary holding a public numpy Generator attribute",
     "generator state is process-local runtime state (describe raises)"),
    ("any adversary holding a public TraceRecorder or other non-zoo object",
     "runtime history describes but is not constructor configuration "
     "(rebuild raises)"),
)


def is_cacheable(adversary: Adversary) -> bool:
    """Whether ``adversary`` has a canonical description.

    False exactly when :func:`repro.cache.describe` raises
    :class:`~repro.errors.FingerprintError` — the same test the
    experiment runner applies before consulting the result cache.
    """
    try:
        describe(adversary)
    except FingerprintError:
        return False
    return True


def adversary_fingerprint(adversary: Adversary) -> str:
    """SHA-256 hex digest of the canonical description.

    Raises :class:`~repro.errors.FingerprintError` for uncacheable
    instances (see :data:`UNCACHEABLE_FORMS`).
    """
    text = json.dumps(describe(adversary), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _is_tagged(desc, tag: str, arity: int) -> bool:
    return (
        isinstance(desc, list)
        and len(desc) == arity
        and desc[0] == tag
    )


def undescribe(desc):
    """Invert :func:`repro.cache.describe` for the configuration
    vocabulary of this package.

    Handles scalars, tagged floats, enums, dicts, ndarrays, nested
    objects from :data:`ZOO_CLASSES`, and plain lists of any of those.
    Raises :class:`~repro.errors.CacheError` on forms it does not know
    (dataclass descriptions belong to protocols, not adversaries).
    """
    if desc is None or isinstance(desc, (bool, int, str)):
        return desc
    if not isinstance(desc, list):
        raise CacheError(f"unknown description node: {desc!r}")
    if _is_tagged(desc, "float", 2) and isinstance(desc[1], str):
        return float(desc[1])
    if _is_tagged(desc, "enum", 3):
        enum_type = _ENUMS.get(desc[1])
        if enum_type is None:
            raise CacheError(f"unknown enum type in description: {desc[1]!r}")
        return enum_type[desc[2]]
    if _is_tagged(desc, "dict", 2) and isinstance(desc[1], list):
        return {key: undescribe(value) for key, value in desc[1]}
    if _is_tagged(desc, "ndarray", 4):
        _, dtype, shape, values = desc
        return np.asarray(undescribe(values), dtype=np.dtype(dtype)).reshape(shape)
    if _is_tagged(desc, "object", 3):
        return rebuild_adversary(desc)
    return [undescribe(item) for item in desc]


def rebuild_adversary(desc) -> Adversary:
    """Rebuild a zoo adversary from its :func:`~repro.cache.describe`
    form.

    The inner adversary of a :class:`BudgetCap` (and any other object
    attribute) is rebuilt recursively.  Raises
    :class:`~repro.errors.CacheError` when the description names a
    class outside :data:`ZOO_CLASSES` or carries attributes its
    constructor does not accept.
    """
    if not _is_tagged(desc, "object", 3):
        raise CacheError(f"not an object description: {desc!r}")
    _, qualified, attrs = desc
    name = qualified.rsplit(".", 1)[-1]
    cls = ZOO_CLASSES.get(name)
    if cls is None:
        raise CacheError(
            f"cannot rebuild {qualified!r}: not a zoo adversary "
            f"(known: {', '.join(sorted(ZOO_CLASSES))})"
        )
    kwargs = {key: undescribe(value) for key, value in attrs}
    try:
        return cls(**kwargs)
    except TypeError as exc:
        raise CacheError(
            f"description of {name} does not match its constructor: {exc}"
        ) from exc
