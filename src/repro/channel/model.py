"""Collision/CCA resolution for one phase — sparse, O(events) hot path.

This is the hot path of the whole simulator.  One call resolves a phase
of ``L`` slots, but the work scales with the *events* in the phase —
``O(#sends + #listens + #spoofs + #jam intervals)`` — never with ``L``
itself: statuses are evaluated only at the union of transmission slots
and listening slots, and jam schedules are interval
(:class:`~repro.channel.intervals.SlotSet`) queries via
``searchsorted``.  At the sweep scale the paper's theorems care about
(phases of ``2**20`` slots with a handful of events each) this is what
makes large-``T`` experiments feasible.

The dense O(L) reference implementation is kept verbatim in
:mod:`repro.channel.model_dense` as a differential oracle; the
``engine``-marked test suite asserts both resolvers return bit-identical
:class:`~repro.channel.events.PhaseOutcome`\\ s on randomised phases,
and the CI gate replays a full experiment under both.

Semantics implemented (Section 1.2 of the paper):

* exactly one transmission in an un-jammed slot ⇒ listeners of that
  group decode it (status = the transmission's kind);
* two or more transmissions (node sends and adversarial spoofs alike)
  ⇒ noise;
* a slot jammed for a group ⇒ that group hears noise regardless of
  content;
* no transmissions and no jam ⇒ clear;
* a node scheduled to both send and listen in one slot performs only
  the send (a half-duplex radio cannot do both), and is charged once;
* a sender never "hears" its own transmission.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass

import numpy as np

from repro.channel.events import (
    N_STATUS,
    JamPlan,
    ListenEvents,
    PhaseOutcome,
    SendEvents,
    SlotSet,
    SlotStatus,
)
from repro.channel.model_dense import (
    resolve_phase_dense,
    slot_content,
    validate_phase_inputs,
)
from repro.errors import ConfigurationError

__all__ = [
    "BatchPhaseOutcome",
    "resolve_phase",
    "resolve_phase_batch",
    "resolve_phase_batch_core",
    "resolve_phase_dense",
    "slot_content",
    "slot_content_at",
    "get_resolver",
    "resolve_resolver_name",
    "RESOLVER_ENV",
    "DENSE_RESOLVER_ENV",
]

#: Environment override for the default resolver: set to ``sparse`` or
#: ``dense``.  The CI byte-identity gate uses ``REPRO_RESOLVER=dense``
#: to replay a whole experiment — executor workers included, since they
#: inherit the environment — through the O(L) oracle.
RESOLVER_ENV = "REPRO_RESOLVER"

#: Deprecated boolean spelling of ``REPRO_RESOLVER=dense``; honoured
#: with a :class:`DeprecationWarning` for one release.
DENSE_RESOLVER_ENV = "REPRO_DENSE_RESOLVER"


def _tx_events(sends: SendEvents, plan: JamPlan) -> tuple[np.ndarray, np.ndarray]:
    """All on-air transmissions of the phase: node sends plus spoofs."""
    tx_slots = sends.slots
    tx_kinds = sends.kinds
    if len(plan.spoof_slots):
        tx_slots = np.concatenate([tx_slots, plan.spoof_slots])
        tx_kinds = np.concatenate([tx_kinds, plan.spoof_kinds])
    return tx_slots, tx_kinds


def _unique_tx_content(
    tx_slots: np.ndarray, tx_kinds: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per distinct transmission slot, its un-jammed content status.

    Returns ``(slots, statuses)`` with ``slots`` sorted ascending: a
    lone transmission decodes as its kind, two or more collide to NOISE.
    Slots carrying no transmission are implicitly CLEAR.
    """
    uniq, first, counts = np.unique(
        tx_slots, return_index=True, return_counts=True
    )
    statuses = tx_kinds[first].astype(np.int8)
    statuses[counts >= 2] = SlotStatus.NOISE
    return uniq, statuses


# Membership tests against a few thousand keys drawn from a bounded
# virtual key space are faster as dense scatter/gather than as binary
# search over the full event arrays, but only while the key space fits
# comfortably in memory; past this limit the batch resolver falls back
# to searchsorted.  Scratch buffers are reused across phases (callers
# reset exactly the entries they wrote) so the per-phase cost is the
# touched entries, not a key-space-sized memset.
_DENSE_KEY_LIMIT = 1 << 23
_dense_scratch: "dict[str, np.ndarray]" = {}


def _dense_buf(name: str, size: int, dtype) -> np.ndarray:
    buf = _dense_scratch.get(name)
    if buf is None or buf.shape[0] < size:
        buf = np.zeros(size, dtype=dtype)
        _dense_scratch[name] = buf
    return buf


def slot_content_at(
    slots: np.ndarray, sends: SendEvents, plan: JamPlan
) -> np.ndarray:
    """Un-jammed channel content at the queried ``slots`` only.

    The sparse counterpart of :func:`slot_content`: evaluates the
    collision outcome at ``len(slots)`` query points in
    ``O((#tx + #queries) log #tx)`` instead of materialising a length-L
    array.  Jamming is *not* applied — it is per-group and applied by
    :func:`resolve_phase`.
    """
    slots = np.asarray(slots, dtype=np.int64)
    tx_slots, tx_kinds = _tx_events(sends, plan)
    if len(tx_slots) == 0:
        return np.zeros(len(slots), dtype=np.int8)  # SlotStatus.CLEAR
    uniq, statuses = _unique_tx_content(tx_slots, tx_kinds)
    pos = np.searchsorted(uniq, slots)
    safe = np.minimum(pos, len(uniq) - 1)
    hit = uniq[safe] == slots
    out = np.zeros(len(slots), dtype=np.int8)
    out[hit] = statuses[safe[hit]]
    return out


def resolve_phase(
    length: int,
    n_nodes: int,
    sends: SendEvents,
    listens: ListenEvents,
    plan: JamPlan,
    groups: np.ndarray | None = None,
) -> PhaseOutcome:
    """Resolve every slot of a phase and tally what each node heard.

    Parameters
    ----------
    length:
        Number of slots in the phase.
    n_nodes:
        Total number of (good) nodes; node indices in the event arrays
        must lie in ``[0, n_nodes)``.
    sends, listens:
        Sparse action sets sampled by the engine from the protocol's
        per-slot probabilities.
    plan:
        The adversary's (already normalised) jam/spoof plan.
    groups:
        Optional ``(n_nodes,)`` int array assigning each node to a jam
        group for an ``l``-uniform adversary.  ``None`` means everyone is
        in group 0 (the 1-uniform case).

    Returns
    -------
    PhaseOutcome
        Per-node heard-status counts, per-node costs, and channel-wide
        ground truth (``n_clear``/``n_noise`` are group 0's view).

    Notes
    -----
    Cost is ``O(E log E)`` for ``E = #sends + #listens + #spoofs +
    #jam intervals`` — independent of ``length``.  Bit-identical to
    :func:`~repro.channel.model_dense.resolve_phase_dense`.
    """
    groups = validate_phase_inputs(length, n_nodes, sends, listens, plan, groups)

    tx_slots, tx_kinds = _tx_events(sends, plan)
    if len(tx_slots):
        uniq_tx, tx_status = _unique_tx_content(tx_slots, tx_kinds)
    else:
        uniq_tx = np.empty(0, np.int64)
        tx_status = np.empty(0, np.int8)

    # Half-duplex: drop listen events that coincide with the same node's
    # own send.  Key each (node, slot) pair into a single int64 and
    # binary-search the listen keys against the sorted send keys (the
    # sort is O(#sends log #sends); `np.isin` would re-sort *both* sides
    # and build an intermediate boolean lattice every phase).
    listen_nodes, listen_slots = listens.nodes, listens.slots
    if len(sends) and len(listens):
        send_keys = np.sort(sends.nodes * length + sends.slots)
        listen_keys = listen_nodes * length + listen_slots
        pos = np.searchsorted(send_keys, listen_keys)
        safe = np.minimum(pos, len(send_keys) - 1)
        keep = send_keys[safe] != listen_keys
        listen_nodes = listen_nodes[keep]
        listen_slots = listen_slots[keep]

    # Un-jammed content status under each listen event, via one binary
    # search into the distinct transmission slots.
    if len(uniq_tx) and len(listen_slots):
        pos = np.searchsorted(uniq_tx, listen_slots)
        safe = np.minimum(pos, len(uniq_tx) - 1)
        hit = uniq_tx[safe] == listen_slots
        base_status = np.zeros(len(listen_slots), dtype=np.int64)
        base_status[hit] = tx_status[safe[hit]]
    else:
        base_status = np.zeros(len(listen_slots), dtype=np.int64)

    # Per-group views: jamming overrides content with NOISE.  Group
    # count is tiny (<= l <= 2 in the paper's experiments); per group
    # the work is one interval-membership query per event.
    group_ids = np.unique(groups)
    heard = np.zeros((n_nodes, N_STATUS), dtype=np.int64)
    is_data_tx = tx_status == SlotStatus.DATA
    data_decodable = np.zeros(int(is_data_tx.sum()), dtype=bool)
    data_tx_slots = uniq_tx[is_data_tx]
    for g in group_ids:
        jam_g = plan.jam_set(int(g))
        data_decodable |= ~jam_g.contains(data_tx_slots)

        in_group = groups[listen_nodes] == g
        if not in_group.any():
            continue
        nodes_g = listen_nodes[in_group]
        statuses = np.where(
            jam_g.contains(listen_slots[in_group]),
            np.int64(SlotStatus.NOISE),
            base_status[in_group],
        )
        flat = np.bincount(nodes_g * N_STATUS + statuses, minlength=n_nodes * N_STATUS)
        heard += flat.reshape(n_nodes, N_STATUS)

    send_cost = np.bincount(sends.nodes, minlength=n_nodes)
    listen_cost = np.bincount(listen_nodes, minlength=n_nodes)

    # Channel-wide ground truth from group 0's perspective: CLEAR slots
    # are those with neither transmission nor group-0 jam, NOISE slots
    # the group-0 jam plus un-jammed collisions/noise transmissions.
    jam_0 = plan.jam_set(0)
    tx_jammed_0 = jam_0.contains(uniq_tx)
    n_clear = length - jam_0.size - int((~tx_jammed_0).sum())
    n_noise = jam_0.size + int(
        ((tx_status == SlotStatus.NOISE) & ~tx_jammed_0).sum()
    )

    return PhaseOutcome(
        heard=heard,
        send_cost=send_cost,
        listen_cost=listen_cost,
        adversary_cost=plan.cost,
        n_clear=n_clear,
        n_noise=n_noise,
        data_slots=int(data_decodable.sum()),
    )


@dataclass(frozen=True)
class BatchPhaseOutcome:
    """Stacked :class:`~repro.channel.events.PhaseOutcome` for B trials.

    The batched engine consumes the stacked arrays directly (they feed
    :class:`~repro.engine.phase.BatchPhaseObservation` and the batch
    ledger without a per-trial scatter loop); :meth:`outcome_for`
    materialises trial ``t``'s serial-identical view on demand.
    """

    heard: np.ndarray            # (B, n_nodes, N_STATUS) int64
    send_cost: np.ndarray        # (B, n_nodes) int64
    listen_cost: np.ndarray      # (B, n_nodes) int64
    adversary_costs: np.ndarray  # (B,) int64
    n_clear: np.ndarray          # (B,) int64
    n_noise: np.ndarray          # (B,) int64
    data_slots: np.ndarray       # (B,) int64

    @property
    def batch_size(self) -> int:
        return len(self.adversary_costs)

    def outcome_for(self, t: int) -> PhaseOutcome:
        """Trial ``t``'s :class:`PhaseOutcome`, exactly as serial."""
        return PhaseOutcome(
            heard=self.heard[t],
            send_cost=self.send_cost[t],
            listen_cost=self.listen_cost[t],
            adversary_cost=int(self.adversary_costs[t]),
            n_clear=int(self.n_clear[t]),
            n_noise=int(self.n_noise[t]),
            data_slots=int(self.data_slots[t]),
        )

    @staticmethod
    def from_outcomes(outcomes: "list[PhaseOutcome]") -> "BatchPhaseOutcome":
        """Stack per-trial outcomes (the dense-resolver batch path)."""
        return BatchPhaseOutcome(
            heard=np.stack([o.heard for o in outcomes]),
            send_cost=np.stack([o.send_cost for o in outcomes]),
            listen_cost=np.stack([o.listen_cost for o in outcomes]),
            adversary_costs=np.array(
                [o.adversary_cost for o in outcomes], dtype=np.int64
            ),
            n_clear=np.array([o.n_clear for o in outcomes], dtype=np.int64),
            n_noise=np.array([o.n_noise for o in outcomes], dtype=np.int64),
            data_slots=np.array(
                [o.data_slots for o in outcomes], dtype=np.int64
            ),
        )


def resolve_phase_batch(
    lengths,
    n_nodes: int,
    sends_list: "list[SendEvents]",
    listens_list: "list[ListenEvents]",
    plans: "list[JamPlan]",
    groups_list: "list[np.ndarray | None]",
) -> "list[PhaseOutcome]":
    """Resolve B trials' phases as one stacked computation.

    A thin per-trial-view wrapper over :func:`resolve_phase_batch_core`;
    see there for the algorithm.  Bit-identical per trial to B
    :func:`resolve_phase` calls.
    """
    core = resolve_phase_batch_core(
        lengths, n_nodes, sends_list, listens_list, plans, groups_list
    )
    return [core.outcome_for(t) for t in range(core.batch_size)]


def resolve_phase_batch_core(
    lengths,
    n_nodes: int,
    sends_list: "list[SendEvents]",
    listens_list: "list[ListenEvents]",
    plans: "list[JamPlan]",
    groups_list: "list[np.ndarray | None]",
    validate: bool = True,
) -> BatchPhaseOutcome:
    """Resolve B trials' phases as one stacked computation.

    Bit-identical per trial to B :func:`resolve_phase` calls — the
    per-trial resolver stays on as this function's differential oracle,
    the same playbook that de-risked the sparse kernel swap.

    The trick is a *virtual slot axis*: trial ``t`` owns the range
    ``[off_t, off_t + lengths[t])`` (``off`` the exclusive prefix sum of
    lengths), and virtual node ``t * n_nodes + u`` owns node ``u``'s
    events.  Because the per-trial ranges are disjoint, one global
    ``np.unique`` computes every trial's collision content, one dense
    scatter/gather membership pass (binary search past
    :data:`_DENSE_KEY_LIMIT`) applies half-duplex, and one stacked
    :class:`~repro.channel.intervals.SlotSet` query per group answers
    every trial's jam membership — the per-phase Python overhead that
    dominated ``replicate`` is paid once per *batch* instead of once per
    trial.

    Parameters
    ----------
    lengths:
        ``(B,)`` per-trial phase lengths (trials may sit in different
        epochs).
    n_nodes:
        Common node count (a batch stacks trials of one protocol).
    sends_list / listens_list / plans / groups_list:
        Per-trial inputs, as for :func:`resolve_phase`.
    validate:
        Skippable for inputs the engine already validated (the batch
        spec validator covers probabilities and the samplers emit
        in-range events by construction); validation never changes the
        result, only whether malformed inputs raise here.
    """
    B = len(plans)
    lengths = np.asarray(lengths, dtype=np.int64)
    if validate:
        groups_arr = [
            validate_phase_inputs(
                int(lengths[t]), n_nodes, sends_list[t], listens_list[t],
                plans[t], groups_list[t],
            )
            for t in range(B)
        ]
    else:
        g0 = groups_list[0] if groups_list else None
        if all(g is g0 for g in groups_list):
            shared = (
                np.zeros(n_nodes, dtype=np.int64)
                if g0 is None
                else np.asarray(g0, dtype=np.int64)
            )
            groups_arr = [shared] * B
        else:
            shared_zeros = np.zeros(n_nodes, dtype=np.int64)
            groups_arr = [
                shared_zeros if g is None else np.asarray(g, dtype=np.int64)
                for g in groups_list
            ]
    off = np.zeros(B, dtype=np.int64)
    np.cumsum(lengths[:-1], out=off[1:])

    first_groups = groups_arr[0]
    groups_shared = all(g is first_groups for g in groups_arr)

    # Stacked transmissions: per trial, node sends then spoofs — the
    # serial concat order, so the stable global unique picks the same
    # first occurrence per slot as each trial's own unique would.  Raw
    # per-trial arrays are concatenated first and translated onto the
    # virtual axes in one vectorized pass — per-trial arithmetic in
    # this loop is the constant that dominates small-event batches.
    tx_parts, kind_parts, tx_owner = [], [], []
    for t in range(B):
        s, p = sends_list[t], plans[t]
        if len(s.slots):
            tx_parts.append(s.slots)
            kind_parts.append(s.kinds)
            tx_owner.append(t)
        if len(p.spoof_slots):
            tx_parts.append(p.spoof_slots)
            kind_parts.append(p.spoof_kinds)
            tx_owner.append(t)
    if tx_parts:
        sizes = np.fromiter(map(len, tx_parts), np.int64, len(tx_parts))
        owner = np.repeat(np.asarray(tx_owner, dtype=np.int64), sizes)
        tx_slots = np.concatenate(tx_parts) + off[owner]
        tx_kinds = np.concatenate(kind_parts)
        uniq_tx, tx_status = _unique_tx_content(tx_slots, tx_kinds)
    else:
        uniq_tx = np.empty(0, np.int64)
        tx_status = np.empty(0, np.int8)
    tx_trial = np.searchsorted(off, uniq_tx, side="right") - 1

    # Stacked listens with virtual (trial, node) ids and half-duplex
    # filtering on injective (vnode, vslot) keys.
    # (trial, node, slot) keys must be injective *across* trials even
    # when phase lengths differ, so each trial owns the key range
    # [koff_t, koff_t + n_nodes * length_t).
    koff = np.zeros(B, dtype=np.int64)
    np.cumsum(n_nodes * lengths[:-1], out=koff[1:])
    ln_parts, ls_parts, l_owner = [], [], []
    sn_parts, ss_parts, s_owner = [], [], []
    for t in range(B):
        s, l = sends_list[t], listens_list[t]
        if len(l.nodes):
            ln_parts.append(l.nodes)
            ls_parts.append(l.slots)
            l_owner.append(t)
        if len(s.nodes):
            sn_parts.append(s.nodes)
            ss_parts.append(s.slots)
            s_owner.append(t)
    if sn_parts:
        s_sizes = np.fromiter(map(len, sn_parts), np.int64, len(sn_parts))
        s_own = np.repeat(np.asarray(s_owner, dtype=np.int64), s_sizes)
        send_nodes_cat = np.concatenate(sn_parts)
        send_vnodes = send_nodes_cat + s_own * n_nodes
    else:
        send_vnodes = np.empty(0, np.int64)
    if ln_parts:
        l_sizes = np.fromiter(map(len, ln_parts), np.int64, len(ln_parts))
        l_own = np.repeat(np.asarray(l_owner, dtype=np.int64), l_sizes)
        l_nodes = np.concatenate(ln_parts)
        l_slots = np.concatenate(ls_parts)
        listen_vnodes = l_nodes + l_own * n_nodes
        listen_vslots = l_slots + off[l_own]
        if groups_shared:
            listen_groups = first_groups[l_nodes]
        else:
            listen_groups = np.concatenate(
                [groups_arr[t][ln] for t, ln in zip(l_owner, ln_parts)]
            )
    else:
        listen_vnodes = np.empty(0, np.int64)
        listen_vslots = np.empty(0, np.int64)
        listen_groups = np.empty(0, np.int64)
    if sn_parts and len(listen_vnodes):
        send_keys = (
            koff[s_own] + send_nodes_cat * lengths[s_own]
            + np.concatenate(ss_parts)
        )
        listen_keys = koff[l_own] + l_nodes * lengths[l_own] + l_slots
        key_space = int(koff[-1] + n_nodes * lengths[-1])
        if key_space <= _DENSE_KEY_LIMIT:
            busy = _dense_buf("halfdup", key_space, np.bool_)
            busy[send_keys] = True
            keep = ~busy[listen_keys]
            busy[send_keys] = False
        else:
            send_keys.sort()
            pos = np.searchsorted(send_keys, listen_keys)
            np.minimum(pos, len(send_keys) - 1, out=pos)
            keep = send_keys[pos] != listen_keys
        listen_vnodes = listen_vnodes[keep]
        listen_vslots = listen_vslots[keep]
        listen_groups = listen_groups[keep]

    # Un-jammed content status under each surviving listen event.
    if len(uniq_tx) and len(listen_vslots):
        slot_space = int(off[-1] + lengths[-1])
        if slot_space <= _DENSE_KEY_LIMIT:
            content = _dense_buf("content", slot_space, np.int8)
            content[uniq_tx] = tx_status
            base_status = content[listen_vslots]
            content[uniq_tx] = 0
        else:
            pos = np.searchsorted(uniq_tx, listen_vslots)
            np.minimum(pos, len(uniq_tx) - 1, out=pos)
            base_status = np.where(
                uniq_tx[pos] == listen_vslots, tx_status[pos], np.int8(0)
            )
    else:
        base_status = np.zeros(len(listen_vslots), dtype=np.int8)

    # Per-group views over the union of every trial's group ids; trials
    # that lack a group must not have it applied to their decodability
    # view, hence the per-trial membership masks.  A batch spec shares
    # one groups array across trials, making the membership uniform —
    # skip the per-trial unique pass in that case.
    if groups_shared:
        all_group_ids = np.unique(first_groups)
        present = np.ones((B, len(all_group_ids)), dtype=bool)
    else:
        trial_gids = [np.unique(g) for g in groups_arr]
        all_group_ids = np.unique(np.concatenate(trial_gids))
        present = np.zeros((B, len(all_group_ids)), dtype=bool)
        for t in range(B):
            present[t, np.searchsorted(all_group_ids, trial_gids[t])] = True

    is_data_tx = tx_status == SlotStatus.DATA
    data_decodable = np.zeros(int(is_data_tx.sum()), dtype=bool)
    data_tx_slots = uniq_tx[is_data_tx]
    data_tx_trial = tx_trial[is_data_tx]
    # Plans only carry targeted sets for the handful of groups the
    # adversary aims at; every other group's jam set *is* the shared
    # global set.  Group ``g``'s full jam set is global ∪ targeted[g]
    # with the two parts disjoint by JamPlan normalisation, so every
    # membership query below decomposes into one shared global-stack
    # pass plus a targeted-only pass for the (few) targeted groups —
    # the per-trial ``jam_set`` unions are never materialised.
    global_stack = SlotSet.stack([p.global_slots for p in plans], off)
    targeted_ids = sorted({g for p in plans for g in p.targeted})
    empty_set = SlotSet.empty()
    targeted_cache: "dict[int, SlotSet]" = {}

    def _targeted_stack(g: int) -> SlotSet:
        got = targeted_cache.get(g)
        if got is None:
            got = SlotSet.stack(
                [p.targeted.get(g, empty_set) for p in plans], off
            )
            targeted_cache[g] = got
        return got

    statuses = np.where(
        global_stack.contains(listen_vslots),
        np.int64(SlotStatus.NOISE),
        base_status,
    )
    for g in targeted_ids:
        sel = np.flatnonzero(listen_groups == g)
        if len(sel):
            jammed = _targeted_stack(g).contains(listen_vslots[sel])
            statuses[sel[jammed]] = SlotStatus.NOISE
    heard = np.bincount(
        listen_vnodes * N_STATUS + statuses,
        minlength=B * n_nodes * N_STATUS,
    ).reshape(B, n_nodes, N_STATUS)

    data_global_jam = global_stack.contains(data_tx_slots)
    for gi, g in enumerate(all_group_ids):
        g = int(g)
        has_g = present[data_tx_trial, gi]
        if has_g.any():
            blocked = data_global_jam[has_g]
            if g in targeted_ids:
                blocked = blocked | _targeted_stack(g).contains(
                    data_tx_slots[has_g]
                )
            data_decodable[has_g] |= ~blocked

    send_cost = np.bincount(
        send_vnodes, minlength=B * n_nodes
    ).reshape(B, n_nodes)
    listen_cost = np.bincount(
        listen_vnodes, minlength=B * n_nodes
    ).reshape(B, n_nodes)

    # Group-0 ground truth per trial (see resolve_phase): applied to
    # *every* trial regardless of which groups its nodes occupy.
    jam0_sizes = np.empty(B, dtype=np.int64)
    for t, p in enumerate(plans):
        t0 = p.targeted.get(0)
        jam0_sizes[t] = p.global_slots.size + (0 if t0 is None else t0.size)
    tx_jammed_0 = global_stack.contains(uniq_tx)
    if 0 in targeted_ids:
        tx_jammed_0 |= _targeted_stack(0).contains(uniq_tx)
    unjammed_tx_per_trial = np.bincount(tx_trial[~tx_jammed_0], minlength=B)
    noise_unjammed = np.bincount(
        tx_trial[(tx_status == SlotStatus.NOISE) & ~tx_jammed_0], minlength=B
    )
    n_clear = lengths - jam0_sizes - unjammed_tx_per_trial
    n_noise = jam0_sizes + noise_unjammed
    data_per_trial = np.bincount(
        data_tx_trial[data_decodable], minlength=B
    )

    return BatchPhaseOutcome(
        heard=heard,
        send_cost=send_cost,
        listen_cost=listen_cost,
        adversary_costs=np.array([p.cost for p in plans], dtype=np.int64),
        n_clear=n_clear.astype(np.int64),
        n_noise=n_noise.astype(np.int64),
        data_slots=data_per_trial.astype(np.int64),
    )


def resolve_resolver_name(
    resolver: str | None = None, *, dense: bool | None = None
) -> str:
    """Normalise every resolver spelling to ``"sparse"`` or ``"dense"``.

    Precedence: the deprecated ``dense=`` boolean (warned) when given,
    then an explicit ``resolver=`` string, then the
    :data:`RESOLVER_ENV` environment variable, then the deprecated
    :data:`DENSE_RESOLVER_ENV` boolean variable (warned), then
    ``"sparse"``.
    """
    if dense is not None:
        warnings.warn(
            "the dense= resolver toggle is deprecated; use "
            "resolver='dense' / resolver='sparse' instead",
            DeprecationWarning,
            stacklevel=3,
        )
        return "dense" if dense else "sparse"
    if resolver is not None:
        if resolver not in ("sparse", "dense"):
            raise ConfigurationError(
                f"resolver must be 'sparse' or 'dense', got {resolver!r}"
            )
        return resolver
    env = os.environ.get(RESOLVER_ENV, "").strip().lower()
    if env:
        if env not in ("sparse", "dense"):
            raise ConfigurationError(
                f"{RESOLVER_ENV} must be 'sparse' or 'dense', got {env!r}"
            )
        return env
    legacy = os.environ.get(DENSE_RESOLVER_ENV, "").strip().lower()
    if legacy:
        warnings.warn(
            f"{DENSE_RESOLVER_ENV} is deprecated; set {RESOLVER_ENV}="
            "dense or sparse instead",
            DeprecationWarning,
            stacklevel=3,
        )
        if legacy in {"1", "true", "yes", "on"}:
            return "dense"
    return "sparse"


def get_resolver(resolver: str | None = None, *, dense: bool | None = None):
    """Select the phase resolver.

    ``resolver="sparse"`` (the default) returns the O(events) kernel,
    ``resolver="dense"`` the O(L) oracle.  With neither argument the
    :data:`RESOLVER_ENV` environment variable decides, so a whole
    process tree — executor workers inherit the environment — can be
    pinned to the oracle without code changes.  The ``dense=`` boolean
    and the :data:`DENSE_RESOLVER_ENV` variable are deprecated
    spellings, honoured with a :class:`DeprecationWarning`.
    """
    name = resolve_resolver_name(resolver, dense=dense)
    return resolve_phase_dense if name == "dense" else resolve_phase
