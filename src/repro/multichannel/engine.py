"""Multichannel run loop via the virtual-slot reduction.

A phase of ``L`` slots over ``C`` channels is resolved as a
single-channel phase of ``C * L`` virtual slots, where real slot ``t``
on channel ``c`` is virtual slot ``c * L + t``:

* a transmission/listen in real slot ``t`` is placed on one uniformly
  random channel, i.e. mapped to virtual slot ``rng.integers(C) * L + t``;
* collisions happen exactly within (channel, slot) cells;
* the adversary's plan is a set of (channel, slot) cells (1 energy
  each), i.e. an ordinary :class:`~repro.channel.events.JamPlan` over
  the virtual slots.

Because a node takes at most one action per *real* slot and each action
occupies exactly one virtual slot, per-slot energy accounting, the
half-duplex rule, and the own-transmission exclusion all carry over
from the single-channel resolver untouched — the reduction is exact,
not an approximation.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

import numpy as np

from repro.channel.accounting import EnergyLedger
from repro.channel.events import JamPlan, ListenEvents, SendEvents
from repro.channel.model import get_resolver, resolve_resolver_name
from repro.engine.phase import PhaseObservation
from repro.engine.sampling import sample_action_events
from repro.engine.simulator import BatchResult, RunResult
from repro.errors import BudgetExceededError, ConfigurationError, ProtocolError
from repro.multichannel.adversaries import MCAdversary, MCContext
from repro.protocols.base import Protocol
from repro.rng import RngFactory

__all__ = ["MCSimulator", "mc_run"]


def _hop(events_slots: np.ndarray, length: int, n_channels: int,
         rng: np.random.Generator) -> np.ndarray:
    """Map real-slot events to virtual slots via uniform channel hops.

    With one channel there is nothing to hop: real and virtual slots
    coincide and *no* rng is consumed, so an ``MCSimulator`` at C=1
    consumes exactly the same random streams as
    :class:`~repro.engine.simulator.Simulator` and the two engines are
    bit-identical on identical seeds (the C=1 differential test pins
    this).
    """
    if len(events_slots) == 0 or n_channels == 1:
        return events_slots
    channels = rng.integers(0, n_channels, len(events_slots))
    return channels * length + events_slots


class MCSimulator:
    """Run any protocol on a ``C``-channel medium.

    Parameters
    ----------
    protocol:
        Any phase-driven protocol; it needs no channel awareness.
    adversary:
        An :class:`~repro.multichannel.adversaries.MCAdversary`.
    n_channels:
        Number of frequency channels ``C >= 1``.
    resolver:
        Resolver selection, as in
        :class:`~repro.engine.simulator.Simulator`: ``"sparse"``
        (default), ``"dense"`` for the O(L) oracle, ``None`` defers to
        the ``REPRO_RESOLVER`` environment variable.
    dense:
        Deprecated boolean spelling of ``resolver=`` (one-release
        :class:`DeprecationWarning`).
    """

    def __init__(
        self,
        protocol: Protocol,
        adversary: MCAdversary,
        n_channels: int,
        *,
        max_slots: int = 50_000_000,
        max_phases: int = 200_000,
        strict: bool = False,
        keep_history: bool = False,
        resolver: str | None = None,
        dense: bool | None = None,
    ) -> None:
        if n_channels < 1:
            raise ConfigurationError(f"n_channels must be >= 1, got {n_channels}")
        declared = getattr(getattr(protocol, "params", None), "n_channels", None)
        if declared is not None and declared != n_channels:
            raise ConfigurationError(
                f"protocol is tuned for {declared} channels but the engine "
                f"was given n_channels={n_channels}"
            )
        self.protocol = protocol
        self.adversary = adversary
        self.n_channels = n_channels
        self.max_slots = max_slots
        self.max_phases = max_phases
        self.strict = strict
        self.keep_history = keep_history
        self.resolver = resolve_resolver_name(resolver, dense=dense)
        self.resolve_phase = get_resolver(self.resolver)

    def run(self, seed: int | np.random.Generator | None = None) -> RunResult:
        factory = RngFactory(seed)
        protocol_rng = factory.get("protocol")
        hop_rng = factory.get("hopping")
        adversary_rng = factory.get("adversary")

        protocol = self.protocol
        protocol.reset(protocol_rng)
        self.adversary.begin_run(protocol.n_nodes, self.n_channels, adversary_rng)

        ledger = EnergyLedger(protocol.n_nodes, keep_history=self.keep_history)
        slots = 0
        phases = 0
        truncated = False
        C = self.n_channels

        while (spec := protocol.next_phase()) is not None:
            if slots + spec.length > self.max_slots or phases >= self.max_phases:
                if self.strict:
                    raise BudgetExceededError(
                        f"run exceeded caps (slots={slots}, phases={phases})"
                    )
                truncated = True
                break
            # Jam groups are a single-channel concept (jamming "near a
            # node"); in the multichannel model the adversary buys
            # (channel, slot) cells that disrupt every listener hopping
            # onto them, so any group annotations are ignored.

            sends, listens = sample_action_events(
                protocol_rng, spec.length, spec.send_probs, spec.send_kinds,
                spec.listen_probs,
            )
            # Half-duplex must be enforced on *real* slots before the
            # hop: a node cannot send on one channel while listening on
            # another.  (The virtual-slot resolver would only catch
            # same-channel conflicts.)
            if len(sends) and len(listens):
                send_keys = np.sort(sends.nodes * spec.length + sends.slots)
                listen_keys = listens.nodes * spec.length + listens.slots
                pos = np.searchsorted(send_keys, listen_keys)
                safe = np.minimum(pos, len(send_keys) - 1)
                keep = send_keys[safe] != listen_keys
                listens = ListenEvents(listens.nodes[keep], listens.slots[keep])
            v_sends = SendEvents(
                sends.nodes,
                _hop(sends.slots, spec.length, C, hop_rng),
                sends.kinds,
            )
            v_listens = ListenEvents(
                listens.nodes, _hop(listens.slots, spec.length, C, hop_rng)
            )

            ctx = MCContext(
                phase_index=phases,
                length=spec.length,
                n_channels=C,
                n_nodes=protocol.n_nodes,
                tags=dict(spec.tags),
                sends=v_sends,
                listens=v_listens,
                spent=ledger.adversary_cost,
            )
            plan = self.adversary.plan_phase(ctx)
            if plan.length != C * spec.length:
                raise ProtocolError(
                    f"MC plan must cover {C}x{spec.length} virtual slots, "
                    f"got {plan.length}"
                )
            outcome = self.resolve_phase(
                C * spec.length, protocol.n_nodes, v_sends, v_listens, plan
            )
            ledger.charge_phase(
                C * spec.length,
                outcome.send_cost + outcome.listen_cost,
                outcome.adversary_cost,
                tags=spec.tags,
                send_costs=outcome.send_cost,
                listen_costs=outcome.listen_cost,
            )
            slots += spec.length
            phases += 1
            protocol.observe(
                PhaseObservation(
                    length=spec.length,
                    heard=outcome.heard,
                    send_cost=outcome.send_cost,
                    listen_cost=outcome.listen_cost,
                    tags=dict(spec.tags),
                )
            )

        if not truncated and not protocol.done:
            raise ProtocolError("protocol returned no phase but reports not done")
        ledger.check_conservation()
        return RunResult(
            node_costs=ledger.node_costs,
            adversary_cost=ledger.adversary_cost,
            slots=slots,
            phases=phases,
            truncated=truncated,
            stats=protocol.summary(),
            phase_history=ledger.history,
            node_send_costs=ledger.send_costs,
            node_listen_costs=ledger.listen_costs,
        )

    def run_batch(
        self,
        seeds,
        *,
        make_protocol=None,
        make_adversary=None,
    ) -> BatchResult:
        """Play B independent multichannel trials.

        Same surface as :meth:`repro.engine.simulator.Simulator.run_batch`
        so callers can treat single- and multi-channel engines uniformly.
        The multichannel loop has no stacked kernel yet — trials execute
        sequentially, each on fresh instances — but the contract is the
        same: trial ``t`` is bit-identical to ``run(seeds[t])`` on the
        corresponding instances.
        """
        seeds = list(seeds)
        results = []
        for seed in seeds:
            sim = MCSimulator(
                make_protocol() if make_protocol is not None
                else copy.deepcopy(self.protocol),
                make_adversary() if make_adversary is not None
                else copy.deepcopy(self.adversary),
                self.n_channels,
                max_slots=self.max_slots,
                max_phases=self.max_phases,
                strict=self.strict,
                keep_history=self.keep_history,
                resolver=self.resolver,
            )
            results.append(sim.run(seed))
        return BatchResult(results=tuple(results), seeds=tuple(seeds))


def mc_run(
    protocol: Protocol,
    adversary: MCAdversary,
    n_channels: int,
    seed: int | np.random.Generator | None = None,
    **kwargs,
) -> RunResult:
    """One-shot convenience wrapper around :class:`MCSimulator`."""
    return MCSimulator(protocol, adversary, n_channels, **kwargs).run(seed)


def hopping_rate_params(params, n_channels: int):
    """Figure 1 parameters corrected for channel-hop dilution.

    Without shared hopping sequences (the paper's model has no shared
    secrets), Alice and Bob meet in a slot only when their independent
    hops coincide — probability ``1/C`` — so running Figure 1 unchanged
    on ``C`` channels silently degrades its ``1 - eps`` guarantee.
    Restoring the per-phase meeting rate requires boosting the action
    probability by ``sqrt(C)``, i.e. replacing ``ln(8/eps)`` with
    ``C * ln(8/eps)``; we do that by substituting the effective epsilon
    ``eps' = denom * (eps/denom)**C`` and raising the first epoch so the
    boosted probability stays below 1.

    The corrected protocol's costs grow by ``sqrt(C)`` — which is
    exactly what cancels the adversary's C-fold per-slot jamming bill
    (experiment E15's net-neutrality finding).
    """
    import dataclasses
    import math

    from repro.protocols.one_to_one import OneToOneParams

    if n_channels < 1:
        raise ConfigurationError(f"n_channels must be >= 1, got {n_channels}")
    if not isinstance(params, OneToOneParams):
        raise ConfigurationError(
            "hopping_rate_params currently supports OneToOneParams"
        )
    if n_channels == 1:
        return params
    denom = params.eps_denom
    eff_eps = denom * (params.epsilon / denom) ** n_channels
    # Keep p_i <= ~0.5 at the first epoch: 2^(i-1) >= 4 C ln(denom/eps).
    min_first = 1 + math.ceil(
        math.log2(4.0 * n_channels * math.log(denom / params.epsilon))
    )
    return dataclasses.replace(
        params,
        epsilon=eff_eps,
        first_epoch=max(params.first_epoch, min_first),
        max_epoch=max(params.max_epoch, max(params.first_epoch, min_first) + 20),
    )
