"""Benchmark E5: the Theorem 2 product game forces E(A)E(B) ~ T.

Regenerates the experiment's table (quick mode) and asserts its
claim-checks; see src/repro/experiments/e05_product_lower_bound.py for the full
workload description and EXPERIMENTS.md for recorded full-mode output.
"""


def test_e05(run_quick):
    run_quick("E5")
