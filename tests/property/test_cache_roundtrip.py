"""Property tests: cached results are bit-identical to computed ones.

The cache's byte-identical-report guarantee reduces to one invariant:
``run_result_to_dict`` → JSON → ``run_result_from_dict`` is lossless
for every :class:`RunResult` the simulator can produce — including NaN
floats in ``stats`` and absent send/listen splits.  Equality is
asserted on canonical JSON text because ``NaN != NaN`` scuppers naive
dict comparison while ``"NaN" == "NaN"`` does not.
"""

from __future__ import annotations

import json
import tempfile

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.store import CacheStore
from repro.engine.simulator import RunResult
from repro.store import run_result_from_dict, run_result_to_dict

pytestmark = pytest.mark.cache

finite = st.floats(allow_nan=False, allow_infinity=False, width=64)
stat_values = st.one_of(
    st.booleans(),
    st.integers(-(2**31), 2**31),
    finite,
    st.just(float("nan")),
    st.lists(st.one_of(finite, st.just(float("nan"))), max_size=4),
)
costs = st.lists(st.integers(0, 2**40), min_size=1, max_size=6)


@st.composite
def run_results(draw):
    node_costs = draw(costs)
    split = draw(st.booleans())
    sends = draw(costs) if split else None
    return RunResult(
        node_costs=np.asarray(node_costs, dtype=np.int64),
        adversary_cost=draw(st.integers(0, 2**40)),
        slots=draw(st.integers(0, 2**40)),
        phases=draw(st.integers(0, 10**6)),
        truncated=draw(st.booleans()),
        stats=draw(
            st.dictionaries(st.text(min_size=1, max_size=12), stat_values,
                            max_size=6)
        ),
        node_send_costs=None if sends is None else np.asarray(sends, dtype=np.int64),
        node_listen_costs=None if sends is None else np.asarray(sends, dtype=np.int64),
    )


def canonical(result: RunResult) -> str:
    return json.dumps(run_result_to_dict(result), sort_keys=True)


@settings(max_examples=100, deadline=None)
@given(run_results())
def test_dict_json_round_trip_lossless(result):
    text = json.dumps(run_result_to_dict(result))
    back = run_result_from_dict(json.loads(text))
    assert canonical(back) == canonical(result)
    if result.node_send_costs is None:
        assert back.node_send_costs is None
    else:
        assert np.array_equal(back.node_send_costs, result.node_send_costs)


@settings(max_examples=50, deadline=None)
@given(run_results(), st.integers(0, 2**256 - 1))
def test_cache_store_round_trip_lossless(result, key_int):
    key = f"{key_int:064x}"
    with tempfile.TemporaryDirectory() as root:
        store = CacheStore(root)
        store.put(key, result)
        back = store.get(key)
    assert canonical(back) == canonical(result)
    assert back.node_costs.dtype == result.node_costs.dtype
