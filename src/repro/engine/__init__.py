"""Vectorized phase-oriented simulation engine.

Both of the paper's protocols are *oblivious within a phase*: a node's
per-slot behaviour during one phase (an epoch phase in Figure 1, a
repetition in Figure 2) is i.i.d. and independent of same-phase channel
feedback — this is exactly the observation behind the paper's Lemma 1.
The engine exploits it to simulate an entire phase in one shot:

1. the protocol emits a :class:`~repro.engine.phase.PhaseSpec`
   (per-node send/listen probabilities over ``L`` slots);
2. the engine samples each node's send/listen slot sets exactly (the
   per-slot Bernoulli process, via geometric-gap skip sampling);
3. the adversary maps the phase context (and, per Lemma 1, the sampled
   actions) to a :class:`~repro.channel.events.JamPlan`;
4. :func:`repro.channel.model.resolve_phase` resolves all slots at once;
5. the protocol observes only what its nodes legally heard.
"""

from repro.engine.executor import ExecutorStats, resolve_jobs, run_tasks
from repro.engine.phase import PhaseObservation, PhaseSpec
from repro.engine.sampling import (
    bernoulli_positions,
    sample_action_events,
    sample_action_events_batch,
)
from repro.engine.simulator import (
    BatchResult,
    RunResult,
    Simulator,
    run,
    run_batch,
)

__all__ = [
    "BatchResult",
    "ExecutorStats",
    "PhaseObservation",
    "PhaseSpec",
    "RunResult",
    "Simulator",
    "bernoulli_positions",
    "resolve_jobs",
    "run",
    "run_batch",
    "run_tasks",
    "sample_action_events",
    "sample_action_events_batch",
]
