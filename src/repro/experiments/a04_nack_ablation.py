"""A4 — ablation: the nack phase of Figure 1.

Why does Figure 1 spend half its energy on a *feedback* channel?
Because the 2-uniform adversary can jam Bob while Alice hears a clean
channel: Alice cannot distinguish "Bob got it" from "Bob was jammed".
The nack phase is Bob's only way to say "keep going".

Ablation: drop the nack phase; Alice transmits for a fixed number of
epochs and halts blind.  Against a silent channel nothing changes —
against an adversary that simply outlasts the blind window by jamming
Bob's group, delivery fails almost surely while the full protocol rides
out the attack (at the usual sqrt-of-budget cost).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.adversaries.basic import SilentAdversary
from repro.adversaries.blocking import EpochTargetJammer
from repro.experiments.registry import ExperimentReport, RunConfig
from repro.experiments.runner import Table, replicate, stable_hash
from repro.protocols.one_to_one import OneToOneBroadcast, OneToOneParams


def run(config: RunConfig | None = None) -> ExperimentReport:
    cfg = config if config is not None else RunConfig()
    seed, quick = cfg.seed, cfg.quick
    n_reps = 30 if quick else 150
    base = OneToOneParams.sim(epsilon=0.1)
    blind = 3
    # The attack outlasts the blind window by two epochs.
    attack_target = base.first_epoch + blind + 1

    variants = {
        "nack on (Fig 1)": base,
        "nack off": dataclasses.replace(base, use_nack=False, blind_epochs=blind),
    }
    adversaries = {
        "silent": lambda: SilentAdversary(),
        f"block Bob to epoch {attack_target}": lambda: EpochTargetJammer(
            attack_target, q=1.0, target_listener=True
        ),
    }

    table = Table(
        f"A4: nack-phase ablation ({n_reps} reps/cell)",
        ["variant", "adversary", "success", "mean max cost"],
    )
    rates: dict[tuple[str, str], float] = {}
    for vname, params in variants.items():
        for aname, make_adv in adversaries.items():
            results = replicate(
                lambda p=params: OneToOneBroadcast(p), make_adv, n_reps,
                seed=seed + stable_hash(vname, aname), config=cfg,
            )
            rate = float(np.mean([r.success for r in results]))
            cost = float(np.mean([r.max_node_cost for r in results]))
            table.add_row(vname, aname, rate, cost)
            rates[(vname, aname)] = rate

    attack = f"block Bob to epoch {attack_target}"
    report = ExperimentReport(eid="A4", title="", anchor="")
    report.tables.append(table)
    report.checks["both variants fine when unjammed"] = (
        rates[("nack on (Fig 1)", "silent")] >= 0.9
        and rates[("nack off", "silent")] >= 0.9
    )
    report.checks["full protocol rides out the attack (success >= 0.9)"] = (
        rates[("nack on (Fig 1)", attack)] >= 0.9
    )
    report.checks["blind variant collapses under the attack (success <= 0.3)"] = (
        rates[("nack off", attack)] <= 0.3
    )
    return report
