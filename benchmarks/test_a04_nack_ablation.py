"""Ablation benchmark A4: nack phase on/off (Section 2 feedback ablation).

Regenerates the ablation's table (quick mode) and asserts its
claim-checks; see src/repro/experiments/a04_nack_ablation.py for details.
"""


def test_a04(run_quick):
    run_quick("A4")
