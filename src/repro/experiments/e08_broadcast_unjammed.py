"""E8 — Theorem 3 (efficiency + latency): the ``T = 0`` regime.

With no adversary the cost function vanishes and the efficiency
function ``tau = O(log^6 n)`` plus the latency bound
``O(n log^2 n)`` remain.  In our scaled preset the per-node cost is
driven by the final-epoch rate climb, giving ``~ c * (lg n + const)**3``
(the cubic comes from ``b*i^2`` repetitions times the ``d*i`` listening
multiplier — the sim preset's analogue of the paper's polylog).

Claims checked: all nodes informed, per-node cost tracks
``(lg n + 5)**3`` within a bounded factor (i.e. genuinely polylog, not
polynomial), and latency tracks ``n`` near-linearly.
"""

from __future__ import annotations

import math

import numpy as np

from repro.adversaries.basic import SilentAdversary
from repro.analysis.scaling import fit_power_law
from repro.experiments.registry import ExperimentReport, RunConfig
from repro.experiments.runner import Table, replicate
from repro.protocols.one_to_n import OneToNBroadcast, OneToNParams


def run(config: RunConfig | None = None) -> ExperimentReport:
    cfg = config if config is not None else RunConfig()
    seed, quick = cfg.seed, cfg.quick
    params = OneToNParams.sim()
    ns = (4, 16, 64) if quick else (4, 8, 16, 32, 64, 128, 256)
    n_reps = 2 if quick else 4

    table = Table(
        f"E8: unjammed (T=0) broadcast, {n_reps} reps/point",
        ["n", "mean_cost", "polylog=(lg n+5)^3", "cost/polylog",
         "slots", "slots/(n lg^2 n)", "final_epoch", "success"],
    )
    rows = []
    for n in ns:
        results = replicate(
            lambda n=n: OneToNBroadcast(n, params),
            lambda: SilentAdversary(),
            n_reps, seed=seed + n, config=cfg,
        )
        mean_cost = float(np.mean([r.node_costs.mean() for r in results]))
        slots = float(np.mean([r.slots for r in results]))
        epoch = float(np.mean([r.stats["final_epoch"] for r in results]))
        success = float(np.mean([r.success for r in results]))
        polylog = (math.log2(max(n, 2)) + 5.0) ** 3
        lat_norm = slots / (n * max(1.0, math.log2(max(n, 2))) ** 2)
        table.add_row(n, mean_cost, polylog, mean_cost / polylog, slots,
                      lat_norm, epoch, success)
        rows.append((n, mean_cost, polylog, slots, success))

    report = ExperimentReport(eid="E8", title="", anchor="")
    report.tables.append(table)

    norm = table.column("cost/polylog")
    report.checks["cost/polylog bounded (spread < 3x)"] = bool(
        norm.max() / norm.min() < 3.0
    )
    lat_fit = fit_power_law(
        np.array([r[0] for r in rows], dtype=float),
        np.array([r[3] for r in rows]),
    )
    report.notes.append(f"latency-vs-n fit: {lat_fit} (Thm 3: ~n lg^2 n)")
    report.checks["latency near-linear in n (exponent in [0.7, 1.45])"] = (
        0.7 <= lat_fit.exponent <= 1.45
    )
    report.checks["all nodes informed in every run"] = bool(
        all(r[4] == 1.0 for r in rows)
    )
    return report
