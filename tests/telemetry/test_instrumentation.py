"""Instrumentation-site coverage: each subsystem emits what it claims.

Every test runs the real subsystem under an active sink and checks the
advertised records land — and, where it matters, that enabling the sink
does not change the science (bit-identical results on/off).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.adversaries import SilentAdversary
from repro.arena.search import evolve, random_search
from repro.arena.space import StrategySpace, protocol_factory
from repro.cache import cached_run_tasks
from repro.cache.store import CacheStore
from repro.engine.simulator import run
from repro.experiments import RunConfig, run_experiment
from repro.protocols import OneToOneBroadcast, OneToOneParams
from repro.telemetry import deactivate, read_events, session

pytestmark = pytest.mark.telemetry


@pytest.fixture(autouse=True)
def no_leaked_sink():
    yield
    deactivate()


def events_named(run_dir, name):
    return [e for e in read_events(run_dir) if e["name"] == name]


class TestSimulatorSpans:
    def test_sim_run_span_emitted(self, tmp_path):
        with session(tmp_path) as sink:
            result = run(
                OneToOneBroadcast(OneToOneParams.sim()),
                SilentAdversary(), seed=7,
            )
        (span,) = events_named(sink.run_dir, "sim.run")
        assert span["ev"] == "span"
        assert span["attrs"]["phases"] == result.phases
        assert span["attrs"]["slots"] == result.slots
        assert span["attrs"]["events"] >= 0
        expected = round(span["attrs"]["events"] / result.slots, 6)
        assert span["attrs"]["events_per_slot"] == expected

    def test_results_identical_with_and_without_sink(self, tmp_path):
        plain = run(
            OneToOneBroadcast(OneToOneParams.sim()), SilentAdversary(), seed=7
        )
        with session(tmp_path):
            traced = run(
                OneToOneBroadcast(OneToOneParams.sim()),
                SilentAdversary(), seed=7,
            )
        assert np.array_equal(plain.node_costs, traced.node_costs)
        assert plain.adversary_cost == traced.adversary_cost
        assert plain.slots == traced.slots


class TestCacheTelemetry:
    def _tasks(self, n):
        keys = [f"{i:064x}" for i in range(n)]
        tasks = [
            lambda i=i: run(
                OneToOneBroadcast(OneToOneParams.sim()),
                SilentAdversary(), seed=i,
            )
            for i in range(n)
        ]
        return keys, tasks

    def test_miss_then_hit_counters_and_put_spans(self, tmp_path):
        store = CacheStore(tmp_path / "cache")
        keys, tasks = self._tasks(3)
        with session(tmp_path / "tele") as sink:
            cached_run_tasks(tasks, keys, store=store)  # all misses
            cached_run_tasks(tasks, keys, store=store)  # all hits
        events = read_events(sink.run_dir)
        counters = {}
        for e in events:
            if e["ev"] == "counter":
                counters[e["name"]] = counters.get(e["name"], 0) + e["value"]
        assert counters["cache.misses"] == 3
        assert counters["cache.hits"] == 3
        assert counters["cache.bytes_written"] > 0
        assert counters["cache.bytes_read"] > 0
        assert len(events_named(sink.run_dir, "cache.put")) == 3
        get_spans = events_named(sink.run_dir, "cache.get_many")
        assert [s["attrs"]["hits"] for s in get_spans] == [0, 3]


class TestExperimentTelemetry:
    def test_run_experiment_opens_scoped_session(self, tmp_path, capsys):
        cfg = RunConfig(seed=5, quick=True, telemetry=tmp_path)
        run_experiment("E1", cfg)
        capsys.readouterr()
        runs = sorted(tmp_path.iterdir())
        assert len(runs) == 1
        (span,) = events_named(runs[0], "experiment.run")
        assert span["attrs"]["eid"] == "E1"
        assert span["attrs"]["seed"] == 5
        assert span["attrs"]["config_fingerprint"] == cfg.fingerprint()
        names = [e["name"] for e in read_events(runs[0])]
        assert names[0] == "run.start" and names[-1] == "run.end"

    def test_fingerprint_covers_science_fields_only(self):
        base = RunConfig(seed=5, quick=True)
        assert base.fingerprint() == RunConfig(
            seed=5, quick=True, jobs=8, telemetry="/tmp/x"
        ).fingerprint()
        assert base.fingerprint() != RunConfig(seed=6, quick=True).fingerprint()
        assert base.fingerprint() != RunConfig(seed=5, quick=False).fingerprint()


SPACE = StrategySpace(families=["suffix", "random"], budget_log2=(8, 10))
FIG1 = protocol_factory("fig1")


class TestArenaTelemetry:
    def test_random_search_gauge(self, tmp_path):
        with session(tmp_path) as sink:
            result = random_search(
                SPACE, FIG1, iterations=3, n_reps=1, seed=21
            )
        (gauge,) = events_named(sink.run_dir, "arena.best_index")
        assert gauge["value"] == result.best.index
        assert gauge["attrs"]["algo"] == "random"
        assert gauge["attrs"]["evaluated"] == result.n_evaluated

    def test_evolve_gauge_per_generation(self, tmp_path):
        with session(tmp_path) as sink:
            result = evolve(
                SPACE, FIG1,
                generations=2, population=3, n_reps=1, seed=5,
            )
        gauges = events_named(sink.run_dir, "arena.best_index")
        assert [g["attrs"]["generation"] for g in gauges] == [0, 1]
        assert [g["value"] for g in gauges] == result.history
