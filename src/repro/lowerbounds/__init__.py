"""Lower-bound games from Section 4.

* :mod:`repro.lowerbounds.product_game` — Theorem 2's fractional-cost
  game: against the reactive threshold adversary, any (WLOG oblivious)
  strategy pair satisfies ``E(A) * E(B) > (1 - O(eps)) T``.
* :mod:`repro.lowerbounds.spoof_game` — Theorem 5's two-scenario
  argument forcing ``Omega(T**(phi-1))`` under Bob-spoofing.
* :mod:`repro.lowerbounds.reduction` — Theorem 4's simulation reduction
  from fair 1-to-n broadcast to the two-party game, implying the
  ``Omega(sqrt(T/n))`` per-node bound.
"""

from repro.lowerbounds.product_game import (
    GameOutcome,
    ProductGame,
    balanced_strategy,
    imbalance_sweep,
)
from repro.lowerbounds.reduction import implied_per_node_bound, reduction_check
from repro.lowerbounds.spoof_game import (
    ScenarioCosts,
    optimal_delta,
    scenario_costs,
    simulate_spoofing_run,
)

__all__ = [
    "GameOutcome",
    "ProductGame",
    "ScenarioCosts",
    "balanced_strategy",
    "imbalance_sweep",
    "implied_per_node_bound",
    "optimal_delta",
    "reduction_check",
    "scenario_costs",
    "simulate_spoofing_run",
]
