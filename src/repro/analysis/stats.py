"""Replication statistics and success-probability intervals."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError

__all__ = ["RunStats", "summarize_costs", "wilson_interval"]


@dataclass(frozen=True)
class RunStats:
    """Summary of one measured quantity across replications."""

    mean: float
    std: float
    median: float
    q10: float
    q90: float
    minimum: float
    maximum: float
    n: int

    @staticmethod
    def from_samples(samples: np.ndarray) -> "RunStats":
        samples = np.asarray(samples, dtype=float)
        if samples.size == 0:
            raise AnalysisError("cannot summarize an empty sample")
        return RunStats(
            mean=float(samples.mean()),
            std=float(samples.std(ddof=1)) if samples.size > 1 else 0.0,
            median=float(np.median(samples)),
            q10=float(np.quantile(samples, 0.10)),
            q90=float(np.quantile(samples, 0.90)),
            minimum=float(samples.min()),
            maximum=float(samples.max()),
            n=int(samples.size),
        )


def summarize_costs(costs: list[float] | np.ndarray) -> RunStats:
    """Convenience wrapper: summarize a list of per-run costs."""
    return RunStats.from_samples(np.asarray(costs, dtype=float))


def wilson_interval(successes: int, trials: int, z: float = 1.96) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    The experiments use it to assert, e.g., "success probability is at
    least ``1 - eps``" with statistical honesty: the claim passes when
    ``1 - eps`` lies below the interval's upper bound.
    """
    if trials <= 0:
        raise AnalysisError(f"trials must be positive, got {trials}")
    if not 0 <= successes <= trials:
        raise AnalysisError(f"successes {successes} out of range [0, {trials}]")
    p = successes / trials
    denom = 1.0 + z * z / trials
    centre = (p + z * z / (2 * trials)) / denom
    half = (
        z
        * np.sqrt(p * (1.0 - p) / trials + z * z / (4.0 * trials * trials))
        / denom
    )
    return (max(0.0, centre - half), min(1.0, centre + half))
