"""Slot-level tracing and replay.

For small runs it is invaluable — in debugging, in teaching, and in
*auditing* the simulator — to see exactly who was on the air in every
slot.  A :class:`TraceRecorder` attached to a
:class:`~repro.engine.simulator.Simulator` captures each phase's raw
material (sampled actions, jam plan, resolved outcome); from it one can

* render per-slot ASCII timelines (:func:`timeline`);
* *replay* the resolution independently and check it reproduces the
  engine's reported observations bit-for-bit (:func:`verify_trace`) —
  an end-to-end audit that the vectorised hot path implements the
  channel semantics.

Tracing stores every event of every phase: use it on runs of up to a
few million slots, not on full sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.channel.events import (
    JamPlan,
    ListenEvents,
    PhaseOutcome,
    SendEvents,
    SlotStatus,
)
from repro.channel.model import resolve_phase, slot_content
from repro.channel.model_dense import resolve_phase_dense
from repro.errors import AnalysisError, SimulationError

__all__ = ["PhaseTrace", "TraceRecorder", "timeline", "verify_trace"]


@dataclass(frozen=True)
class PhaseTrace:
    """Everything needed to replay one phase."""

    phase_index: int
    length: int
    n_nodes: int
    tags: dict
    sends: SendEvents
    listens: ListenEvents
    plan: JamPlan
    groups: np.ndarray | None
    heard: np.ndarray  # what the engine reported


@dataclass
class TraceRecorder:
    """Collects :class:`PhaseTrace` records during a run.

    Pass to :class:`~repro.engine.simulator.Simulator` via the ``trace``
    argument.  ``max_phases`` guards against accidentally tracing a
    month-long sweep.
    """

    max_phases: int = 10_000
    phases: list[PhaseTrace] = field(default_factory=list)

    def record(
        self,
        phase_index: int,
        length: int,
        n_nodes: int,
        tags: dict,
        sends: SendEvents,
        listens: ListenEvents,
        plan: JamPlan,
        groups: np.ndarray | None,
        outcome: PhaseOutcome,
    ) -> None:
        if len(self.phases) >= self.max_phases:
            raise SimulationError(
                f"trace exceeded max_phases={self.max_phases}; "
                "tracing is for small runs"
            )
        self.phases.append(
            PhaseTrace(
                phase_index=phase_index,
                length=length,
                n_nodes=n_nodes,
                tags=dict(tags),
                sends=sends,
                listens=listens,
                plan=plan,
                groups=None if groups is None else groups.copy(),
                heard=outcome.heard.copy(),
            )
        )

    def __len__(self) -> int:
        return len(self.phases)


#: Glyphs used by :func:`timeline`.
GLYPH_SEND = "S"
GLYPH_SEND_LOST = "x"  # transmission collided or was jammed away
GLYPH_HEAR_MSG = "M"
GLYPH_HEAR_NOISE = "n"
GLYPH_HEAR_CLEAR = "."
GLYPH_SLEEP = " "
GLYPH_JAM = "#"


def timeline(trace: PhaseTrace, max_width: int = 120) -> str:
    """Render one phase as a per-slot, per-node ASCII timeline.

    One row per node plus a jam row.  ``S`` = successful transmission,
    ``x`` = transmission lost to collision/jam, ``M`` = heard a
    message, ``n`` = heard noise, ``.`` = heard a clear slot, space =
    asleep.  Phases wider than ``max_width`` are truncated with an
    ellipsis marker.
    """
    width = min(trace.length, max_width)
    truncated = trace.length > max_width

    content = slot_content(trace.length, trace.sends, trace.plan)
    groups = (
        trace.groups
        if trace.groups is not None
        else np.zeros(trace.n_nodes, dtype=np.int64)
    )
    jam_masks = {int(g): trace.plan.jam_mask(int(g)) for g in np.unique(groups)}
    jam_union = np.zeros(trace.length, dtype=bool)
    for m in jam_masks.values():
        jam_union |= m

    rows = []
    for u in range(trace.n_nodes):
        row = [GLYPH_SLEEP] * width
        jam_u = jam_masks[int(groups[u])]
        mask = trace.listens.nodes == u
        for slot in trace.listens.slots[mask]:
            if slot >= width:
                continue
            status = (
                SlotStatus.NOISE if jam_u[slot] else SlotStatus(int(content[slot]))
            )
            if status == SlotStatus.CLEAR:
                row[slot] = GLYPH_HEAR_CLEAR
            elif status == SlotStatus.NOISE:
                row[slot] = GLYPH_HEAR_NOISE
            else:
                row[slot] = GLYPH_HEAR_MSG
        mask = trace.sends.nodes == u
        for slot in trace.sends.slots[mask]:
            if slot >= width:
                continue
            # "Delivered" = decodable and not jammed for (at least) the
            # jammed groups; with a global jam this is exact, with a
            # targeted jam the glyph reflects the jammed side's view.
            delivered = int(content[slot]) not in (
                int(SlotStatus.CLEAR),
                int(SlotStatus.NOISE),
            ) and not jam_union[slot]
            row[slot] = GLYPH_SEND if delivered else GLYPH_SEND_LOST
        rows.append(row)

    label_w = len(f"node {trace.n_nodes - 1}")
    lines = [
        f"phase {trace.phase_index} "
        f"(len {trace.length}{', truncated view' if truncated else ''}) "
        f"tags={trace.tags}"
    ]
    for u, row in enumerate(rows):
        lines.append(f"{f'node {u}':>{label_w}} │{''.join(row)}")
    jam_row = [GLYPH_SLEEP] * width
    for slot in np.flatnonzero(jam_union):
        if slot < width:
            jam_row[slot] = GLYPH_JAM
    lines.append(f"{'jam':>{label_w}} │{''.join(jam_row)}")
    return "\n".join(lines)


def verify_trace(recorder: TraceRecorder) -> int:
    """Replay every recorded phase and check the engine's reports.

    Re-resolves each phase from its raw events with *both* resolvers —
    the sparse O(events) hot path
    (:func:`repro.channel.model.resolve_phase`) and the dense O(L)
    oracle (:func:`repro.channel.model_dense.resolve_phase_dense`) —
    checks the two produce identical :class:`PhaseOutcome`\\ s, and
    compares the heard matrices against what the engine reported.
    Returns the number of phases verified; raises
    :class:`AnalysisError` on any mismatch.
    """
    for t in recorder.phases:
        outcome = resolve_phase(
            t.length, t.n_nodes, t.sends, t.listens, t.plan, groups=t.groups
        )
        oracle = resolve_phase_dense(
            t.length, t.n_nodes, t.sends, t.listens, t.plan, groups=t.groups
        )
        if not (
            np.array_equal(outcome.heard, oracle.heard)
            and np.array_equal(outcome.send_cost, oracle.send_cost)
            and np.array_equal(outcome.listen_cost, oracle.listen_cost)
            and (outcome.adversary_cost, outcome.n_clear, outcome.n_noise,
                 outcome.data_slots)
            == (oracle.adversary_cost, oracle.n_clear, oracle.n_noise,
                oracle.data_slots)
        ):
            raise AnalysisError(
                f"sparse/dense resolver divergence in phase {t.phase_index}: "
                f"{outcome} != {oracle}"
            )
        if not np.array_equal(outcome.heard, t.heard):
            raise AnalysisError(
                f"replay mismatch in phase {t.phase_index}: "
                f"{outcome.heard.tolist()} != {t.heard.tolist()}"
            )
    return len(recorder.phases)
