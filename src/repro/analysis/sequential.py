"""Sequential probability ratio testing for success-rate claims.

Statements like Theorem 1's "Bob receives ``m`` with probability at
least ``1 - eps``" are verified by replication — but a fixed sample
size wastes runs when the truth is far from the boundary.  Wald's SPRT
decides ``H0: p >= p0`` against ``H1: p <= p1`` with prescribed error
rates and stops as early as the evidence allows; simulation is the
textbook use case (each observation costs a full protocol run).

The experiments use fixed-size batches for reproducible tables; the
SPRT is offered for interactive/CI use where run budget matters, and
is itself validated empirically in ``tests/analysis/test_sequential.py``.
"""

from __future__ import annotations

import math
from collections.abc import Callable
from dataclasses import dataclass

from repro.errors import AnalysisError

__all__ = ["SPRT", "SPRTResult", "verify_success_probability"]


@dataclass(frozen=True)
class SPRTResult:
    """Outcome of a sequential test."""

    decision: str  # "accept_h0" | "accept_h1" | "undecided"
    n_samples: int
    successes: int

    @property
    def rate(self) -> float:
        return self.successes / self.n_samples if self.n_samples else float("nan")


class SPRT:
    """Wald's sequential test of ``H0: p >= p0`` vs ``H1: p <= p1``.

    Parameters
    ----------
    p0:
        The claimed (higher) success probability — e.g. ``1 - eps``.
    p1:
        The alternative (lower) probability defining "meaningfully
        broken"; the indifference zone is ``(p1, p0)``.
    alpha:
        Probability of rejecting a true H0 (false alarm).
    beta:
        Probability of accepting H0 when ``p <= p1`` (missed defect).
    """

    def __init__(
        self, p0: float, p1: float, alpha: float = 0.05, beta: float = 0.05
    ) -> None:
        if not 0.0 < p1 < p0 < 1.0:
            raise AnalysisError(
                f"need 0 < p1 < p0 < 1, got p0={p0!r}, p1={p1!r}"
            )
        if not 0.0 < alpha < 1.0 or not 0.0 < beta < 1.0:
            raise AnalysisError("alpha and beta must be in (0, 1)")
        self.p0, self.p1 = p0, p1
        self.alpha, self.beta = alpha, beta
        # Log-likelihood-ratio increments for success / failure under
        # H1 relative to H0.
        self._llr_success = math.log(p1 / p0)
        self._llr_failure = math.log((1.0 - p1) / (1.0 - p0))
        # Wald's boundaries (H1 accepted above `_upper`, H0 below `_lower`).
        self._upper = math.log((1.0 - beta) / alpha)
        self._lower = math.log(beta / (1.0 - alpha))
        self.reset()

    def reset(self) -> None:
        self._llr = 0.0
        self._n = 0
        self._successes = 0

    @property
    def n_samples(self) -> int:
        return self._n

    def update(self, success: bool) -> str | None:
        """Feed one observation; return a decision or ``None``.

        Once a decision is reached further updates raise — reset first.
        """
        if self._llr >= self._upper or self._llr <= self._lower:
            raise AnalysisError("test already decided; call reset()")
        self._n += 1
        if success:
            self._successes += 1
            self._llr += self._llr_success
        else:
            self._llr += self._llr_failure
        if self._llr >= self._upper:
            return "accept_h1"
        if self._llr <= self._lower:
            return "accept_h0"
        return None

    def run(
        self, sampler: Callable[[int], bool], max_samples: int = 10_000
    ) -> SPRTResult:
        """Draw from ``sampler(i)`` until decision or ``max_samples``."""
        if max_samples < 1:
            raise AnalysisError("max_samples must be >= 1")
        self.reset()
        for i in range(max_samples):
            decision = self.update(bool(sampler(i)))
            if decision is not None:
                return SPRTResult(decision, self._n, self._successes)
        return SPRTResult("undecided", self._n, self._successes)


def verify_success_probability(
    make_success: Callable[[int], bool],
    claimed: float,
    slack: float = 0.5,
    alpha: float = 0.02,
    beta: float = 0.02,
    max_samples: int = 5_000,
) -> SPRTResult:
    """Sequentially test a protocol's success-rate claim.

    Tests ``H0: p >= claimed`` against
    ``H1: p <= 1 - (1 - claimed)/slack`` — i.e. "the failure rate is at
    least ``1/slack`` times the allowance".  Example: for Theorem 1
    with ``eps = 0.1``, ``claimed = 0.9`` and the default slack flags
    implementations whose failure rate reaches 20%.

    Parameters
    ----------
    make_success:
        ``replication index -> bool`` (run the protocol, return
        ``result.success``).
    claimed:
        The theorem's success probability (``1 - eps``).
    slack:
        Ratio defining the indifference zone (smaller = wider zone =
        earlier decisions).
    """
    if not 0.0 < claimed < 1.0:
        raise AnalysisError(f"claimed must be in (0, 1), got {claimed!r}")
    if not 0.0 < slack < 1.0:
        raise AnalysisError(f"slack must be in (0, 1), got {slack!r}")
    p1 = 1.0 - (1.0 - claimed) / slack
    if p1 <= 0.0:
        raise AnalysisError(
            f"claimed={claimed!r} with slack={slack!r} gives a degenerate "
            "alternative; use a larger slack"
        )
    test = SPRT(p0=claimed, p1=p1, alpha=alpha, beta=beta)
    return test.run(make_success, max_samples=max_samples)
