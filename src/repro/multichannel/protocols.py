"""Chen–Zheng-style multichannel broadcast (arXiv 1904.06328, 2001.03936).

The multichannel broadcast literature beats the single-channel energy
game not by hopping *better* — experiment E15 shows forced uniform
hopping is energy-neutral for a 1-to-1 protocol, the ``sqrt(C)`` rate
boost exactly cancelling the adversary's ``C``-fold blocking bill — but
by *multiplicity*: once several informed nodes spread across the band,
channel coverage removes the ``1/C`` meeting dilution while the
(1−ε)-fraction adversary still pays ``(1-eps) * C`` per blocked slot.
At a fixed budget ``T`` her battery dies after ``T / ((1-eps) C)``
slots — ``C``-fold sooner — so for large ``C`` the protocol finishes at
near-unjammed cost where the C=1 run pays the full jammed bill.

:class:`CZBroadcast` distils that mechanism onto the repo's
phase-driven :class:`~repro.protocols.base.Protocol` API:

* **epoch structure** — epoch ``i`` is one phase of ``2**i`` slots,
  exactly the paper's doubling schedule, so the same Lemma-1-style
  suffix attacks and epoch-tag adversaries apply unchanged;
* **sender/listener roles** — informed nodes send the message with the
  epoch rate (capped at ``C / n`` so the *expected* number of senders
  per channel stays ~1 once everyone is informed — the Chen–Zheng
  "one broadcaster per channel" discipline), uninformed nodes listen
  with the uncapped epoch rate;
* **channel hopping** — supplied by :class:`~repro.multichannel.engine
  .MCSimulator`'s uniform per-slot hop; the protocol itself is
  channel-oblivious and at ``C = 1`` degenerates to a single-channel
  1-to-n epidemic broadcast (the Theorem 3 setting).

The epoch rate ``r_i = min(cap, sqrt(lambda / 2**(i-1)))`` with
``lambda = ln(eps_denom / epsilon)`` is Figure 1/2's birthday-paradox
schedule: per epoch each informed–uninformed pair meets on a clean cell
``~lambda`` times in expectation once the active rate saturates, and
total per-node energy across epochs forms the usual geometric series.

One modeling simplification, stated loudly: the run stops when every
node is informed (an oracle stop).  Per-node halting rules — Figure 2's
noisy-slot estimators, Chen–Zheng's termination subroutines — are about
*detecting* completion, an orthogonal concern already exercised by the
single-channel zoo; here the measured quantities are the cost and
latency to completion, which the stopping rule does not affect.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.channel.events import SlotStatus, TxKind
from repro.engine.phase import (
    BatchPhaseObservation,
    BatchPhaseSpec,
    PhaseObservation,
    PhaseSpec,
)
from repro.errors import ConfigurationError, ProtocolError
from repro.protocols.base import Protocol

__all__ = ["CZParams", "CZBroadcast", "cz_pair_protocol"]


@dataclass(frozen=True)
class CZParams:
    """Parameters for :class:`CZBroadcast`.

    Attributes
    ----------
    n_nodes:
        Population size ``n >= 2``; node 0 is the source.
    n_channels:
        Band width ``C`` the protocol is tuned for (the engine's
        ``MCSimulator`` must be constructed with the same ``C``).  Only
        the ``C / n`` send cap depends on it; ``C = 1`` is the
        single-channel degeneration.
    epsilon:
        Target failure probability.
    eps_denom:
        Denominator in ``lambda = ln(eps_denom / epsilon)`` (Figure 1
        uses 8).
    first_epoch / max_epoch:
        Epoch range; the run aborts (failure) past ``max_epoch``.
    send_cap:
        Hard ceiling on any per-slot probability.
    """

    n_nodes: int = 16
    n_channels: int = 1
    epsilon: float = 0.1
    eps_denom: float = 8.0
    first_epoch: int = 4
    max_epoch: int = 24
    send_cap: float = 0.5

    def __post_init__(self) -> None:
        if self.n_nodes < 2:
            raise ConfigurationError(f"n_nodes must be >= 2, got {self.n_nodes}")
        if self.n_channels < 1:
            raise ConfigurationError(
                f"n_channels must be >= 1, got {self.n_channels}"
            )
        if not 0.0 < self.epsilon < 1.0:
            raise ConfigurationError(f"epsilon must be in (0, 1), got {self.epsilon!r}")
        if self.eps_denom <= self.epsilon:
            raise ConfigurationError("eps_denom must exceed epsilon")
        if self.first_epoch < 1 or self.max_epoch < self.first_epoch:
            raise ConfigurationError(
                f"need 1 <= first_epoch <= max_epoch, got "
                f"{self.first_epoch}, {self.max_epoch}"
            )
        if not 0.0 < self.send_cap <= 1.0:
            raise ConfigurationError(f"send_cap must be in (0, 1], got {self.send_cap!r}")

    @property
    def lam(self) -> float:
        """``lambda = ln(eps_denom / epsilon)`` — meetings needed per epoch."""
        return math.log(self.eps_denom / self.epsilon)

    def rate(self, epoch: int) -> float:
        """The epoch's birthday-paradox action rate ``r_i``."""
        return min(self.send_cap, math.sqrt(self.lam / 2.0 ** (epoch - 1)))

    def send_probability(self, epoch: int) -> float:
        """Informed-node per-slot send probability (``C/n``-capped)."""
        return min(self.rate(epoch), self.n_channels / self.n_nodes)

    def listen_probability(self, epoch: int) -> float:
        """Uninformed-node per-slot listen probability."""
        return self.rate(epoch)

    def phase_length(self, epoch: int) -> int:
        return 1 << epoch

    @classmethod
    def sim(
        cls,
        n_nodes: int = 16,
        n_channels: int = 1,
        epsilon: float = 0.1,
        eps_denom: float = 8.0,
    ) -> "CZParams":
        """Simulation-friendly instance: the first epoch is the smallest
        at which the uncapped rate drops below ~1/2, so the schedule
        starts where the analysis is valid instead of idling through
        saturated epochs."""
        lam = math.log(eps_denom / epsilon)
        first = 1 + math.ceil(math.log2(max(2.0, 4.0 * lam)))
        return cls(
            n_nodes=n_nodes,
            n_channels=n_channels,
            epsilon=epsilon,
            eps_denom=eps_denom,
            first_epoch=first,
            max_epoch=first + 20,
        )


class CZBroadcast(Protocol):
    """Epoch-structured 1-to-n epidemic broadcast for ``C`` channels.

    Each epoch is one phase; informed nodes are senders, uninformed
    nodes listeners (roles per :class:`CZParams`).  A node that decodes
    the message in any listening slot becomes informed and switches
    roles from the next epoch.  The protocol consumes no randomness of
    its own — all sampling happens engine-side from the emitted
    probabilities — so the default lockstep batch driver reproduces
    serial runs bit-for-bit by construction.
    """

    def __init__(self, params: CZParams | None = None) -> None:
        self.params = params if params is not None else CZParams()
        self.n_nodes = self.params.n_nodes
        self._informed: np.ndarray | None = None
        self._epoch = self.params.first_epoch
        self._final_epoch = self.params.first_epoch
        self._done = False
        self._aborted = False

    def reset(self, rng: np.random.Generator) -> None:
        self._rng = rng  # unused: the protocol is deterministic given observations
        self._informed = np.zeros(self.n_nodes, dtype=bool)
        self._informed[0] = True  # the source
        self._epoch = self.params.first_epoch
        self._final_epoch = self.params.first_epoch
        self._done = False
        self._aborted = False

    def next_phase(self) -> PhaseSpec | None:
        if self._done:
            return None
        if self._epoch > self.params.max_epoch:
            self._aborted = True
            self._done = True
            return None
        p = self.params
        s = p.send_probability(self._epoch)
        q = p.listen_probability(self._epoch)
        send_probs = np.where(self._informed, s, 0.0)
        listen_probs = np.where(self._informed, 0.0, q)
        self._final_epoch = self._epoch
        return PhaseSpec(
            length=p.phase_length(self._epoch),
            send_probs=send_probs,
            send_kinds=np.full(self.n_nodes, TxKind.DATA, dtype=np.int8),
            listen_probs=listen_probs,
            tags={
                "protocol": "cz",
                "kind": "spread",
                "epoch": self._epoch,
                "p": s,
                "q": q,
            },
        )

    def observe(self, obs: PhaseObservation) -> None:
        heard_data = obs.heard[:, SlotStatus.DATA] > 0
        self._informed |= heard_data
        self._epoch += 1
        if self._informed.all():
            self._done = True

    @property
    def done(self) -> bool:
        return self._done

    def summary(self) -> dict:
        informed = 0 if self._informed is None else int(self._informed.sum())
        return {
            "success": self._informed is not None and bool(self._informed.all()),
            "n_informed": informed,
            "final_epoch": self._final_epoch,
            "aborted": self._aborted,
        }

    # -- lockstep batch implementation ------------------------------------
    #
    # Per-trial state stacked on a leading trial axis.  The protocol
    # draws no randomness, so bit-identity to serial reduces to the
    # per-epoch rate arithmetic — which goes through the very same
    # scalar CZParams methods, cached per distinct epoch (lockstep
    # trials share epochs until the first finishes, so the cache has
    # one entry on almost every step).

    def reset_batch(self, rng_streams: list[np.random.Generator]) -> None:
        b = len(rng_streams)
        p = self.params
        self._informed_b = np.zeros((b, self.n_nodes), dtype=bool)
        self._informed_b[:, 0] = True  # the source
        self._epoch_b = np.full(b, p.first_epoch, dtype=np.int64)
        self._final_epoch_b = np.full(b, p.first_epoch, dtype=np.int64)
        self._done_b = np.zeros(b, dtype=bool)
        self._aborted_b = np.zeros(b, dtype=bool)
        self._awaiting_b = np.zeros(b, dtype=bool)

    def done_batch(self) -> np.ndarray:
        return self._done_b.copy()

    def next_phase_batch(self, mask: np.ndarray) -> BatchPhaseSpec | None:
        if (self._awaiting_b & mask).any():
            raise ProtocolError("next_phase called before observe")
        p = self.params
        emit = np.asarray(mask, dtype=bool) & ~self._done_b
        over = emit & (self._epoch_b > p.max_epoch)
        if over.any():
            self._aborted_b |= over
            self._done_b |= over
            emit = emit & ~over
        if not emit.any():
            return None

        b = len(emit)
        rows = np.flatnonzero(emit)
        rates: dict[int, tuple[float, float]] = {}
        s_rows = np.empty(len(rows), dtype=np.float64)
        q_rows = np.empty(len(rows), dtype=np.float64)
        tags: list = [None] * b
        for i, t in enumerate(rows):
            epoch = int(self._epoch_b[t])
            sq = rates.get(epoch)
            if sq is None:
                sq = rates[epoch] = (
                    p.send_probability(epoch),
                    p.listen_probability(epoch),
                )
            s_rows[i], q_rows[i] = sq
            tags[t] = {
                "protocol": "cz",
                "kind": "spread",
                "epoch": epoch,
                "p": sq[0],
                "q": sq[1],
            }
        lengths = np.ones(b, dtype=np.int64)
        lengths[emit] = np.int64(1) << self._epoch_b[emit]
        send_probs = np.zeros((b, self.n_nodes), dtype=np.float64)
        listen_probs = np.zeros((b, self.n_nodes), dtype=np.float64)
        send_probs[rows] = np.where(
            self._informed_b[rows], s_rows[:, None], 0.0
        )
        listen_probs[rows] = np.where(
            self._informed_b[rows], 0.0, q_rows[:, None]
        )
        self._final_epoch_b[emit] = self._epoch_b[emit]
        self._awaiting_b = emit.copy()
        return BatchPhaseSpec(
            lengths=lengths,
            send_probs=send_probs,
            send_kinds=np.full((b, self.n_nodes), TxKind.DATA, dtype=np.int8),
            listen_probs=listen_probs,
            active=emit,
            tags=tags,
        )

    def observe_batch(self, obs: BatchPhaseObservation) -> None:
        act = obs.active
        if (act & ~self._awaiting_b).any():
            raise ProtocolError("observe called with no phase outstanding")
        self._awaiting_b &= ~act
        heard_data = obs.heard[:, :, SlotStatus.DATA] > 0
        self._informed_b[act] |= heard_data[act]
        self._epoch_b[act] += 1
        self._done_b[act] = self._informed_b[act].all(axis=1)

    def summary_batch(self) -> list[dict]:
        return [
            {
                "success": bool(self._informed_b[t].all()),
                "n_informed": int(self._informed_b[t].sum()),
                "final_epoch": int(self._final_epoch_b[t]),
                "aborted": bool(self._aborted_b[t]),
            }
            for t in range(len(self._done_b))
        ]


def cz_pair_protocol(n_channels: int, params=None):
    """The hop-corrected 1-to-1 baseline as a protocol factory.

    Figure 1 with :func:`~repro.multichannel.engine.hopping_rate_params`
    applied — at ``C = 1`` literally the paper's protocol.  This is the
    *no-speedup* member of the multichannel zoo (E15's net-neutrality),
    kept alongside :class:`CZBroadcast` so arena searches can contrast
    the pair game against the epidemic game on the same band.
    """
    from repro.multichannel.engine import hopping_rate_params
    from repro.protocols.one_to_one import OneToOneBroadcast, OneToOneParams

    base = params if params is not None else OneToOneParams.sim()
    return OneToOneBroadcast(hopping_rate_params(base, n_channels))
