"""Exact, vectorized sampling of per-slot Bernoulli action processes.

Every protocol in the paper has each node act independently per slot
with some probability ``p`` ("send with probability S_u / 2**i", "listen
with probability p_i", ...).  Materialising an ``(n_nodes, L)`` Bernoulli
matrix is wasteful when ``p`` is small (and ``L`` reaches ``2**20`` in
the sweeps), so we sample the *positions* of the successes directly.

The geometric-gap ("skip") method is exact: in a Bernoulli(p) process
the gaps between consecutive successes are i.i.d. Geometric(p), so we
draw gaps via inverse-CDF, prefix-sum them, and truncate at ``L``.  Cost
is ``O(pL)`` instead of ``O(L)``.  For large ``p`` a dense draw is
cheaper and we switch automatically.
"""

from __future__ import annotations

import math

import numpy as np

from repro.channel.events import ListenEvents, SendEvents
from repro.errors import SimulationError

__all__ = [
    "bernoulli_positions",
    "sample_action_events",
    "sample_action_events_batch",
    "DENSE_P_THRESHOLD",
]

#: Above this probability a dense length-``L`` draw beats skip sampling.
DENSE_P_THRESHOLD: float = 0.2


def _geometric_gaps(
    rng: np.random.Generator, p: float, count: int, cap: int
) -> np.ndarray:
    """Draw ``count`` i.i.d. Geometric(p) gaps (support ``{1, 2, ...}``).

    Uses the inverse CDF ``ceil(log(1-U) / log(1-p))``, exact for
    float64 ``U`` up to representability.  Gaps are clipped to ``cap``
    (any value beyond the phase length is equivalent) so that extreme
    draws at tiny ``p`` cannot overflow the integer cast.
    """
    u = rng.random(count)
    # log1p(-u) is log(1-u) computed stably; log1p(-p) likewise.  The
    # division can overflow to inf for astronomically small p; those
    # draws are beyond any phase and the clip handles them.
    with np.errstate(over="ignore"):
        raw = np.ceil(np.log1p(-u) / math.log1p(-p))
    gaps = np.clip(raw, 1.0, float(cap)).astype(np.int64)
    return gaps


def bernoulli_positions(
    rng: np.random.Generator, length: int, p: float
) -> np.ndarray:
    """Positions of successes of a length-``length`` Bernoulli(p) process.

    Returns a sorted int64 array of distinct slot indices in
    ``[0, length)``.  The distribution is *exactly* that of flipping an
    independent p-coin per slot: the count is Binomial(length, p) and,
    conditioned on the count, the positions are a uniform random subset.

    Parameters
    ----------
    rng:
        Source of randomness.
    length:
        Number of slots.
    p:
        Per-slot success probability; values outside ``[0, 1]`` raise.
    """
    if length < 0:
        raise SimulationError(f"length must be non-negative, got {length}")
    if not 0.0 <= p <= 1.0:
        raise SimulationError(f"probability must be in [0, 1], got {p!r}")
    if length == 0 or p == 0.0:
        return np.empty(0, dtype=np.int64)
    if p == 1.0:
        return np.arange(length, dtype=np.int64)

    if p >= DENSE_P_THRESHOLD:
        return np.flatnonzero(rng.random(length) < p).astype(np.int64)

    # Skip sampling: draw a batch of gaps sized for the expected count
    # plus slack; extend in the (rare) case the prefix sum falls short.
    mean = length * p
    batch = int(mean + 6.0 * math.sqrt(mean * (1.0 - p)) + 16.0)
    cap = length + 1
    positions = np.cumsum(_geometric_gaps(rng, p, batch, cap)) - 1
    while positions[-1] < length - 1:
        extra = np.cumsum(_geometric_gaps(rng, p, batch, cap)) + positions[-1]
        positions = np.concatenate([positions, extra])
    return positions[positions < length]


def _distinct_positions_batch(
    rng: np.random.Generator, length: int, counts: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """For each node ``u``, a uniform random ``counts[u]``-subset of
    ``[0, length)`` — all nodes at once.

    Exactness: conditioned on its Binomial count, a Bernoulli process's
    success positions are a uniform subset, and sequential rejection of
    duplicates samples uniform subsets exactly.  Nodes wanting more
    than half the slots are handled by sampling the *complement* (a
    uniform (L-k)-subset's complement is a uniform k-subset), which
    keeps the rejection loop away from the coupon-collector regime.

    Returns ``(node_ids, slots)`` arrays (unordered within a node).
    """
    counts = np.asarray(counts, dtype=np.int64)
    n = len(counts)
    heavy = counts > length // 2

    node_parts: list[np.ndarray] = []
    slot_parts: list[np.ndarray] = []

    # Light nodes: rejection sampling on (node, slot) keys.  Each round
    # overdraws slightly so one unique() pass usually collects enough
    # distinct slots per node; surpluses are trimmed afterwards by a
    # per-node uniformly random subset (value-symmetric, hence exact).
    light_idx = np.flatnonzero(~heavy & (counts > 0))
    if len(light_idx):
        want = counts[light_idx]
        keys = np.empty(0, dtype=np.int64)
        need = want.copy()
        while True:
            total = int(need.sum())
            if total == 0:
                break
            overdraw = need + need // 16 + 4
            draw_nodes = np.repeat(light_idx, overdraw)
            draw_slots = rng.integers(0, length, int(overdraw.sum()))
            keys = np.unique(
                np.concatenate([keys, draw_nodes * length + draw_slots])
            )
            have = np.bincount(keys // length, minlength=n)[light_idx]
            need = np.maximum(0, want - have)

        nodes_all = keys // length
        have = np.bincount(nodes_all, minlength=n)[light_idx]
        if (have > want).any():
            # keys is sorted, hence node-major: trim each node's segment
            # to a random `want`-subset by ranking on random tie-breaks.
            order = np.lexsort((rng.random(len(keys)), nodes_all))
            starts = np.zeros(len(light_idx), dtype=np.int64)
            np.cumsum(have[:-1], out=starts[1:])
            seg_of = np.repeat(np.arange(len(light_idx)), have)
            rank = np.arange(len(keys)) - starts[seg_of]
            keep_sorted = rank < want[seg_of]
            keys = keys[order[keep_sorted]]
            nodes_all = keys // length
        node_parts.append(nodes_all)
        slot_parts.append(keys % length)

    # Heavy nodes: sample the complement, then invert with a mask.
    heavy_idx = np.flatnonzero(heavy)
    if len(heavy_idx):
        comp_counts = np.zeros(n, dtype=np.int64)
        comp_counts[heavy_idx] = length - counts[heavy_idx]
        comp_nodes, comp_slots = _distinct_positions_batch(
            rng, length, comp_counts
        )
        mask = np.ones((len(heavy_idx), length), dtype=bool)
        remap = np.full(n, -1, dtype=np.int64)
        remap[heavy_idx] = np.arange(len(heavy_idx))
        mask[remap[comp_nodes], comp_slots] = False
        rows, cols = np.nonzero(mask)
        node_parts.append(heavy_idx[rows])
        slot_parts.append(cols)

    if not node_parts:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    return (
        np.concatenate(node_parts),
        np.concatenate(slot_parts).astype(np.int64),
    )


def sample_action_events(
    rng: np.random.Generator,
    length: int,
    send_probs: np.ndarray,
    send_kinds: np.ndarray,
    listen_probs: np.ndarray,
) -> tuple[SendEvents, ListenEvents]:
    """Sample every node's send and listen slots for one phase.

    The per-node, per-slot Bernoulli processes are sampled exactly but
    fully batched: one vectorised Binomial draw for the counts, then a
    batched uniform-subset draw for the positions (see
    :func:`_distinct_positions_batch`).  No Python-level loop over
    nodes — this is the engine's hottest path.

    Parameters
    ----------
    rng:
        Source of randomness (one stream for the whole phase; node
        streams need not be separated because the draws are independent
        by construction).
    length:
        Phase length in slots.
    send_probs / listen_probs:
        ``(n_nodes,)`` per-slot action probabilities.
    send_kinds:
        ``(n_nodes,)`` :class:`~repro.channel.events.TxKind` value each
        node transmits when it sends.

    Returns
    -------
    (SendEvents, ListenEvents)
        Sparse event sets, node-grouped.
    """
    send_probs = np.asarray(send_probs, dtype=np.float64)
    listen_probs = np.asarray(listen_probs, dtype=np.float64)
    send_kinds = np.asarray(send_kinds, dtype=np.int8)
    n = len(send_probs)
    if listen_probs.shape != (n,) or send_kinds.shape != (n,):
        raise SimulationError("send_probs, send_kinds, listen_probs length mismatch")
    if ((send_probs < 0) | (send_probs > 1)).any() or (
        (listen_probs < 0) | (listen_probs > 1)
    ).any():
        raise SimulationError("action probabilities must lie in [0, 1]")

    send_counts = rng.binomial(length, send_probs)
    send_nodes, send_slots = _distinct_positions_batch(rng, length, send_counts)
    sends = (
        SendEvents(send_nodes, send_slots, send_kinds[send_nodes])
        if len(send_nodes)
        else SendEvents.empty()
    )

    listen_counts = rng.binomial(length, listen_probs)
    listen_nodes, listen_slots = _distinct_positions_batch(
        rng, length, listen_counts
    )
    listens = (
        ListenEvents(listen_nodes, listen_slots)
        if len(listen_nodes)
        else ListenEvents.empty()
    )
    return sends, listens


#: Per-trial position budget above which the lockstep sampler hands the
#: trial to the serial helper: beyond this the trial is array-bound and
#: batching per-call constants no longer pays (see
#: :func:`_distinct_positions_multi`).
_LOCKSTEP_MAX_WANT = 512


def _distinct_positions_multi(
    rngs: list[np.random.Generator],
    lengths: np.ndarray,
    counts_list: list[np.ndarray],
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Per-trial uniform subsets, batched across B trials.

    Trial ``t`` draws ``counts_list[t][u]`` distinct slots of
    ``[0, lengths[t])`` for each node ``u`` — with *exactly* the rng call
    sequence of B independent :func:`_distinct_positions_batch` calls.
    Entropy stays per-trial (each trial's generator sees the same draws
    it would serially, which is what pins per-trial RNG streams under
    batching), while all deterministic processing — dedup, counting,
    trimming — runs once on a global key axis: trial ``t`` owns keys
    ``[K_t, K_t + n_t * L_t)``, so one ``np.unique`` resolves every
    trial's rejection round at once, and per-trial segments of the
    sorted global array equal the trials' serial results.

    Trials containing a heavy node (count > length/2, the complement-
    sampling regime) fall back to the serial helper — mixing the
    complement recursion into the lockstep rounds would reorder their
    draws.  So do trials wanting many positions overall: the lockstep
    win is amortising per-call Python constants across trials, and once
    a single trial's arrays are thousands of elements the serial path
    is already array-bound, so the global-axis bookkeeping would only
    add overhead.  Either way the dispatch is invisible in the output —
    the serial helper *is* the reference stream.
    """
    B = len(rngs)
    out: list = [None] * B
    counts_by_trial = [np.asarray(c, dtype=np.int64) for c in counts_list]
    lock: list[int] = []
    for t in range(B):
        counts = counts_by_trial[t]
        if (
            (counts > lengths[t] // 2).any()
            or counts.sum() > _LOCKSTEP_MAX_WANT
        ):
            out[t] = _distinct_positions_batch(rngs[t], int(lengths[t]), counts)
        elif not counts.any():
            out[t] = (np.empty(0, np.int64), np.empty(0, np.int64))
        else:
            lock.append(t)
    if not lock:
        return out

    nt = len(lock)
    L = np.array([lengths[t] for t in lock], dtype=np.int64)
    lidx = [np.flatnonzero(counts_by_trial[t] > 0) for t in lock]
    n_light = np.array([len(a) for a in lidx], dtype=np.int64)
    # Global key layout: trial i's (node, slot) pairs map injectively to
    # [K[i], K[i] + n_i * L_i); bases[j] is light node j's key origin.
    dom = np.array([len(counts_by_trial[t]) for t in lock], dtype=np.int64) * L
    K = np.zeros(nt, dtype=np.int64)
    np.cumsum(dom[:-1], out=K[1:])
    bases = np.concatenate([K[i] + lidx[i] * L[i] for i in range(nt)])
    trial_of = np.repeat(np.arange(nt), n_light)
    want = np.concatenate([counts_by_trial[lock[i]][lidx[i]] for i in range(nt)])

    keys = np.empty(0, dtype=np.int64)
    need = want.copy()
    have = np.zeros(len(bases), dtype=np.int64)
    while True:
        need_per_trial = np.bincount(
            trial_of, weights=need, minlength=nt
        ).astype(np.int64)
        act_node = need_per_trial[trial_of] > 0
        if not act_node.any():
            break
        # Serial semantics: an active trial overdraws for *all* its
        # light nodes each round (satisfied nodes included), so the
        # per-trial draw sizes — and hence the rng streams — match.
        od = (need + need // 16 + 4)[act_node]
        nd_per_trial = np.bincount(
            trial_of[act_node], weights=od, minlength=nt
        ).astype(np.int64)
        slot_parts = [
            rngs[lock[i]].integers(0, L[i], int(nd_per_trial[i]))
            for i in np.flatnonzero(nd_per_trial)
        ]
        new_keys = np.repeat(bases[act_node], od) + np.concatenate(slot_parts)
        keys = np.unique(np.concatenate([keys, new_keys]))
        lid_of_key = np.searchsorted(bases, keys, side="right") - 1
        have = np.bincount(lid_of_key, minlength=len(bases))
        need = np.maximum(0, want - have)

    lid_of_key = np.searchsorted(bases, keys, side="right") - 1
    trial_of_key = trial_of[lid_of_key]

    # Trim surpluses per trial, only in trials that would trim serially
    # (untrimmed trials keep sorted-key order; trimmed ones keep the
    # serial lexsort order, both of which downstream content resolution
    # depends on for bit-identity).
    trial_trim = np.zeros(nt, dtype=bool)
    over = have > want
    if over.any():
        trial_trim[trial_of[over]] = True
    mask_k = trial_trim[trial_of_key]
    kept = np.empty(0, dtype=np.int64)
    kept_trial = np.empty(0, dtype=np.int64)
    if mask_k.any():
        keys_sub = keys[mask_k]
        lid_sub = lid_of_key[mask_k]
        seg_sizes = np.bincount(trial_of_key[mask_k], minlength=nt)
        rand = np.concatenate(
            [rngs[lock[i]].random(int(seg_sizes[i]))
             for i in np.flatnonzero(trial_trim)]
        )
        order = np.lexsort((rand, lid_sub))
        node_mask = trial_trim[trial_of]
        have_m = have[node_mask]
        want_m = want[node_mask]
        starts = np.zeros(len(have_m), dtype=np.int64)
        np.cumsum(have_m[:-1], out=starts[1:])
        seg_of = np.repeat(np.arange(len(have_m)), have_m)
        rank = np.arange(len(keys_sub)) - starts[seg_of]
        keep_sorted = rank < want_m[seg_of]
        kept = keys_sub[order[keep_sorted]]
        kept_trial = trial_of[np.searchsorted(bases, kept, side="right") - 1]

    untrimmed = keys[~mask_k]
    untrimmed_trial = trial_of_key[~mask_k]
    for i in range(nt):
        # Both sources are trial-major, so each trial's result is a
        # contiguous segment.
        src, src_trial = (
            (kept, kept_trial) if trial_trim[i] else (untrimmed, untrimmed_trial)
        )
        lo, hi = np.searchsorted(src_trial, [i, i + 1])
        rel = src[lo:hi] - K[i]
        nodes = rel // L[i]
        out[lock[i]] = (nodes, rel - nodes * L[i])
    return out


def sample_action_events_batch(
    rngs: list[np.random.Generator],
    lengths,
    send_probs_list: list[np.ndarray],
    send_kinds_list: list[np.ndarray],
    listen_probs_list: list[np.ndarray],
) -> list[tuple[SendEvents, ListenEvents]]:
    """Sample B trials' phases at once; bit-identical per trial to B
    :func:`sample_action_events` calls.

    Each trial keeps its own generator and sees the serial call order —
    send Binomial, send positions, listen Binomial, listen positions —
    so per-trial streams are unchanged by batching; the deterministic
    subset-selection work is shared across trials via
    :func:`_distinct_positions_multi`.

    Parameters mirror :func:`sample_action_events`, one list entry per
    trial; ``lengths`` is a ``(B,)`` int array of phase lengths (trials
    in a lockstep batch may sit in different epochs).

    Returns one ``(SendEvents, ListenEvents)`` pair per trial.
    """
    B = len(rngs)
    lengths = np.asarray(lengths, dtype=np.int64)
    send_probs_list = [np.asarray(p, dtype=np.float64) for p in send_probs_list]
    listen_probs_list = [np.asarray(p, dtype=np.float64) for p in listen_probs_list]
    send_kinds_list = [np.asarray(k, dtype=np.int8) for k in send_kinds_list]
    for t in range(B):
        n = len(send_probs_list[t])
        if (
            listen_probs_list[t].shape != (n,)
            or send_kinds_list[t].shape != (n,)
        ):
            raise SimulationError(
                "send_probs, send_kinds, listen_probs length mismatch"
            )
        if ((send_probs_list[t] < 0) | (send_probs_list[t] > 1)).any() or (
            (listen_probs_list[t] < 0) | (listen_probs_list[t] > 1)
        ).any():
            raise SimulationError("action probabilities must lie in [0, 1]")

    send_counts = [
        rngs[t].binomial(int(lengths[t]), send_probs_list[t]) for t in range(B)
    ]
    send_pos = _distinct_positions_multi(rngs, lengths, send_counts)
    listen_counts = [
        rngs[t].binomial(int(lengths[t]), listen_probs_list[t]) for t in range(B)
    ]
    listen_pos = _distinct_positions_multi(rngs, lengths, listen_counts)

    results = []
    for t in range(B):
        send_nodes, send_slots = send_pos[t]
        sends = (
            SendEvents(send_nodes, send_slots, send_kinds_list[t][send_nodes])
            if len(send_nodes)
            else SendEvents.empty()
        )
        listen_nodes, listen_slots = listen_pos[t]
        listens = (
            ListenEvents(listen_nodes, listen_slots)
            if len(listen_nodes)
            else ListenEvents.empty()
        )
        results.append((sends, listens))
    return results
