"""Baseline jamming strategies: silent, random, periodic, suffix."""

from __future__ import annotations

import numpy as np

from repro.adversaries.base import Adversary, AdversaryContext
from repro.channel.events import JamPlan
from repro.engine.sampling import bernoulli_positions
from repro.errors import ConfigurationError

__all__ = ["SilentAdversary", "RandomJammer", "PeriodicJammer", "SuffixJammer"]


class SilentAdversary(Adversary):
    """Never jams — the ``T = 0`` regime that the efficiency function
    ``tau`` is about."""

    def plan_phase(self, ctx: AdversaryContext) -> JamPlan:
        return JamPlan.silent(ctx.length)

    @classmethod
    def plan_phase_batch(cls, advs, ctxs):
        return [JamPlan.silent(c.length) for c in ctxs]


class RandomJammer(Adversary):
    """Jams each slot independently with probability ``p``.

    This is the random-fault adversary of Pelc–Peleg [30] rather than a
    worst-case strategy; it is the natural model for non-malicious
    interference (collisions with foreign networks, fading).

    Parameters
    ----------
    p:
        Per-slot jam probability.
    group:
        Target group for a targeted jam; ``None`` jams channel-wide.
    """

    def __init__(self, p: float, group: int | None = None) -> None:
        if not 0.0 <= p <= 1.0:
            raise ConfigurationError(f"jam probability must be in [0, 1], got {p!r}")
        self.p = p
        self.group = group

    def plan_phase(self, ctx: AdversaryContext) -> JamPlan:
        slots = bernoulli_positions(self.rng, ctx.length, self.p)
        if self.group is None:
            return JamPlan(length=ctx.length, global_slots=slots)
        return JamPlan(length=ctx.length, targeted={self.group: slots})


class PeriodicJammer(Adversary):
    """Jams every ``period``-th slot starting at ``offset``.

    A deterministic duty-cycle jammer — cheap for the adversary, and a
    useful sanity case: the protocols must shrug it off because it never
    concentrates enough energy in one phase to q-block it.
    """

    def __init__(self, period: int, offset: int = 0, group: int | None = None) -> None:
        if period < 1:
            raise ConfigurationError(f"period must be >= 1, got {period}")
        if not 0 <= offset < period:
            raise ConfigurationError(f"offset must be in [0, period), got {offset}")
        self.period = period
        self.offset = offset
        self.group = group

    def plan_phase(self, ctx: AdversaryContext) -> JamPlan:
        slots = np.arange(self.offset, ctx.length, self.period, dtype=np.int64)
        if self.group is None:
            return JamPlan(length=ctx.length, global_slots=slots)
        return JamPlan(length=ctx.length, targeted={self.group: slots})


class SuffixJammer(Adversary):
    """Jams the last ``fraction`` of every phase — Lemma 1's canonical
    adversary shape, applied unconditionally.

    Parameters
    ----------
    fraction:
        Fraction of each phase to jam (``0.5`` = half-block every phase).
    group:
        Target group; ``None`` jams channel-wide.
    max_total:
        Optional budget; once cumulative cost reaches it the adversary
        goes quiet, modelling battery exhaustion.
    """

    def __init__(
        self,
        fraction: float,
        group: int | None = None,
        max_total: int | None = None,
    ) -> None:
        if not 0.0 <= fraction <= 1.0:
            raise ConfigurationError(f"fraction must be in [0, 1], got {fraction!r}")
        if max_total is not None and max_total < 0:
            raise ConfigurationError(f"max_total must be >= 0, got {max_total}")
        self.fraction = fraction
        self.group = group
        self.max_total = max_total

    def plan_phase(self, ctx: AdversaryContext) -> JamPlan:
        want = int(round(self.fraction * ctx.length))
        if self.max_total is not None:
            want = min(want, max(0, self.max_total - ctx.spent))
        return JamPlan.suffix(ctx.length, want, group=self.group)

    @classmethod
    def plan_phase_batch(cls, advs, ctxs):
        wants = []
        for a, c in zip(advs, ctxs):
            want = int(round(a.fraction * c.length))
            if a.max_total is not None:
                want = min(want, max(0, a.max_total - c.spent))
            wants.append(want)
        return JamPlan.suffix_batch(
            [c.length for c in ctxs], wants, [a.group for a in advs]
        )
