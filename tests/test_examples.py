"""Every example script must run clean.

Examples are the public face of the library; a broken one is a broken
deliverable.  Each is executed as a real subprocess (fresh interpreter,
no test-suite state) and must exit 0 with non-trivial output.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))

EXPECTED_MARKERS = {
    "quickstart.py": "message delivered",
    "sensor_network_broadcast.py": "advantage",
    "bankrupting_the_jammer.py": "fitted exponents",
    "lower_bound_game.py": "golden ratio",
    "energy_forensics.py": "cumulative energy race",
    "slot_microscope.py": "replay",
    "spectrum_defense.py": "delivery rate",
}


def test_all_examples_are_covered():
    assert {p.name for p in EXAMPLES} == set(EXPECTED_MARKERS)


@pytest.mark.slow
@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert len(proc.stdout) > 200  # produced a real report
    marker = EXPECTED_MARKERS[script.name]
    assert marker in proc.stdout, f"{script.name} output missing {marker!r}"
    assert "Traceback" not in proc.stderr
