"""Job model, dedupe index, and single-runner job queue for the service.

A *job* is one experiment run the service has been asked for:
``(experiment, seed, quick)`` — exactly the science-determining fields
of :class:`~repro.experiments.registry.RunConfig`, and therefore
exactly what :meth:`RunConfig.fingerprint` hashes.  That digest **is**
the job id, which makes deduplication structural instead of
bookkeeping: two clients asking for the same science compute the same
id and land on the same :class:`JobRecord`, whether the first request
is still queued, currently running, or long finished.  Execution knobs
(worker count, batch size, cache location) belong to the
:class:`JobManager`, not the job — they cannot change the bytes of the
answer, so they must not split the dedupe index.

The manager runs jobs **one at a time** on a single daemon thread.
That is a deliberate shape, not a missing feature: each job already
fans out across the manager's persistent
:class:`~repro.engine.executor.WorkerPool`, so job-level concurrency
would just make two sweeps fight over the same cores — and a strictly
serial runner keeps the per-job telemetry story trivial (the process's
telemetry sink is job-bound while the job runs).  Concurrency lives at
the *request* layer: any number of clients submit, dedupe, poll, and
stream concurrently; only the cache-miss computation is serialized.

Results are held as the exact bytes :func:`repro.store.save_report`
would write (see :func:`repro.store.report_to_bytes`), so a client that
saves a fetched result to disk produces a file byte-identical to a CLI
``run --save`` of the same config — the property the service CI gate
diffs for.
"""

from __future__ import annotations

import dataclasses
import queue
import threading
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path

from repro.engine.executor import WorkerPool
from repro.errors import ServiceError
from repro.experiments.registry import (
    RunConfig,
    get_experiment,
    run_experiment,
)
from repro.store import report_to_bytes

__all__ = ["JobManager", "JobRecord", "JobSpec", "JobState"]


class JobState:
    """Lifecycle states (plain strings — they travel through JSON)."""

    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"


@dataclass(frozen=True)
class JobSpec:
    """The science a client is asking for: one experiment run.

    Frozen and minimal on purpose — anything that cannot change the
    report bytes has no business in here (it would fracture dedupe).
    """

    experiment: str
    seed: int = 0
    quick: bool = True

    def __post_init__(self) -> None:
        # Validate and canonicalize the id eagerly so two spellings of
        # one experiment ("e1"/"E1") cannot mint two jobs.
        eid = get_experiment(self.experiment).eid
        object.__setattr__(self, "experiment", eid)
        if isinstance(self.seed, bool) or not isinstance(self.seed, int):
            raise ServiceError(f"seed must be an integer, got {self.seed!r}")
        if not isinstance(self.quick, bool):
            raise ServiceError(f"quick must be a boolean, got {self.quick!r}")

    @property
    def job_id(self) -> str:
        """The config fingerprint — dedupe key and public job id."""
        return RunConfig(
            seed=self.seed, quick=self.quick, experiment=self.experiment
        ).fingerprint()

    def to_dict(self) -> dict:
        return {
            "experiment": self.experiment,
            "seed": self.seed,
            "quick": self.quick,
        }

    @classmethod
    def from_dict(cls, data: dict) -> JobSpec:
        if not isinstance(data, dict):
            raise ServiceError(f"job spec must be an object, got {data!r}")
        unknown = set(data) - {"experiment", "seed", "quick"}
        if unknown:
            raise ServiceError(
                f"unknown job spec field(s): {', '.join(sorted(unknown))}"
            )
        if "experiment" not in data:
            raise ServiceError("job spec is missing 'experiment'")
        return cls(
            experiment=data["experiment"],
            seed=data.get("seed", 0),
            quick=data.get("quick", True),
        )


@dataclass
class JobRecord:
    """One deduped unit of work and everything known about it."""

    spec: JobSpec
    job_id: str
    state: str = JobState.QUEUED
    submissions: int = 1
    created: float = field(default_factory=time.time)
    started: float | None = None
    finished: float | None = None
    error: str | None = None
    result_bytes: bytes | None = None
    stats: dict | None = None
    telemetry_dir: str | None = None
    done: threading.Event = field(default_factory=threading.Event, repr=False)

    def to_dict(self) -> dict:
        """JSON status view (never includes the result payload)."""
        return {
            "job_id": self.job_id,
            "spec": self.spec.to_dict(),
            "state": self.state,
            "submissions": self.submissions,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "elapsed": (
                None if self.started is None
                else (self.finished or time.time()) - self.started
            ),
            "error": self.error,
            "stats": self.stats,
            "telemetry_dir": self.telemetry_dir,
        }


class JobManager:
    """Dedupe index + FIFO queue + single runner thread.

    All public methods are thread-safe; ``submit``/``get``/``wait`` are
    called from many server-side request handlers concurrently while
    the runner thread executes jobs.
    """

    def __init__(
        self,
        *,
        jobs: int = 1,
        batch: int = 1,
        cache_dir: str | Path | None = None,
        telemetry_root: str | Path | None = None,
        memory_entries: int | None = None,
    ) -> None:
        from repro.cache import CacheStore, ReadThroughStore, default_cache_dir
        from repro.cache.memory import DEFAULT_MEMORY_ENTRIES

        self.jobs = jobs
        self.batch = batch
        self.store = ReadThroughStore(
            CacheStore(cache_dir if cache_dir is not None else default_cache_dir()),
            max_entries=(
                DEFAULT_MEMORY_ENTRIES if memory_entries is None else memory_entries
            ),
        )
        # One long-lived pool shared by every job: workers are spawned
        # once and reused, so back-to-back jobs skip the fork storm.
        # jobs=1 runs serially in the runner thread; no pool needed.
        self.pool = WorkerPool(jobs) if jobs != 1 else None
        self.telemetry_root = (
            Path(telemetry_root) if telemetry_root is not None else None
        )
        self._lock = threading.Lock()
        self._records: dict[str, JobRecord] = {}
        self._queue: queue.Queue[str | None] = queue.Queue()
        self._closed = False
        self.submitted = 0   # submit() calls accepted
        self.deduped = 0     # of those, absorbed by an existing record
        self.executed = 0    # jobs actually run by the runner thread
        self.failed = 0
        self._runner = threading.Thread(
            target=self._run_loop, name="repro-service-runner", daemon=True
        )
        self._runner.start()

    # -- public API ------------------------------------------------------

    def submit(self, spec: JobSpec) -> JobRecord:
        """Enqueue (or join) the job for ``spec``; returns its record.

        A spec whose fingerprint matches a queued, running, or
        completed job joins that job — ``submissions`` counts how many
        requests the record absorbed.  A previously *failed* job is
        re-enqueued: failures are environmental (a killed worker, a
        full disk), never a property of the spec, so retrying on
        explicit resubmission is the honest policy.
        """
        job_id = spec.job_id
        with self._lock:
            if self._closed:
                raise ServiceError("job manager is closed")
            self.submitted += 1
            record = self._records.get(job_id)
            if record is not None and record.state != JobState.FAILED:
                record.submissions += 1
                self.deduped += 1
                return record
            if record is not None:  # failed: reset and retry
                record.submissions += 1
                record.state = JobState.QUEUED
                record.error = None
                record.done.clear()
            else:
                record = JobRecord(spec=spec, job_id=job_id)
                self._records[job_id] = record
            self._queue.put(job_id)
            return record

    def get(self, job_id: str) -> JobRecord:
        with self._lock:
            record = self._records.get(job_id)
        if record is None:
            raise ServiceError(f"unknown job id {job_id!r}")
        return record

    def wait(self, job_id: str, timeout: float | None = None) -> JobRecord:
        """Block until the job finishes (either way); returns its record."""
        record = self.get(job_id)
        if not record.done.wait(timeout):
            raise ServiceError(
                f"job {job_id} did not finish within {timeout}s"
            )
        return record

    def list_jobs(self) -> list[JobRecord]:
        with self._lock:
            return sorted(self._records.values(), key=lambda r: r.created)

    def counters(self) -> dict:
        """Service-level accounting: dedupe, execution, cache, pool."""
        with self._lock:
            out = {
                "submitted": self.submitted,
                "deduped": self.deduped,
                "executed": self.executed,
                "failed": self.failed,
                "jobs_known": len(self._records),
                "queue_depth": self._queue.qsize(),
            }
        out["cache"] = self.store.counters()
        if self.pool is not None:
            out["pool"] = {
                "jobs": self.pool.jobs,
                "alive_workers": self.pool.alive_workers,
                "spawned_total": self.pool.spawned_total,
            }
        return out

    def close(self) -> None:
        """Stop the runner thread and release the worker pool."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._queue.put(None)
        self._runner.join(timeout=30.0)
        if self.pool is not None:
            self.pool.close()

    def __enter__(self) -> JobManager:
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- runner thread ---------------------------------------------------

    def _job_config(self, spec: JobSpec) -> RunConfig:
        return RunConfig(
            seed=spec.seed,
            quick=spec.quick,
            jobs=self.jobs,
            batch=self.batch,
            cache=True,
            cache_store=self.store,
            pool=self.pool,
        )

    def _run_loop(self) -> None:
        while True:
            job_id = self._queue.get()
            if job_id is None:
                return
            record = self._records[job_id]
            with self._lock:
                record.state = JobState.RUNNING
                record.started = time.time()
            try:
                self._execute(record)
            except BaseException as exc:  # a job must never kill the loop
                with self._lock:
                    record.state = JobState.FAILED
                    record.error = "".join(
                        traceback.format_exception_only(type(exc), exc)
                    ).strip()
                    record.finished = time.time()
                    self.failed += 1
            finally:
                record.done.set()

    def _execute(self, record: JobRecord) -> None:
        cfg = self._job_config(record.spec)
        if self.telemetry_root is not None:
            from repro.telemetry.sink import bound_session

            run_dir = self.telemetry_root / record.job_id
            with bound_session(
                run_dir,
                manifest={
                    "command": "service.job",
                    "experiments": [record.spec.experiment],
                    "seed": record.spec.seed,
                    "quick": record.spec.quick,
                    "config_fingerprint": record.job_id,
                },
            ):
                with self._lock:
                    record.telemetry_dir = str(run_dir)
                report = run_experiment(record.spec.experiment, cfg)
        else:
            report = run_experiment(record.spec.experiment, cfg)
        with self._lock:
            record.result_bytes = report_to_bytes(report)
            record.stats = dataclasses.asdict(cfg.stats)
            record.state = JobState.COMPLETED
            record.finished = time.time()
            self.executed += 1
