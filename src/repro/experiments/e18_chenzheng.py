"""E18 — Chen–Zheng spectrum speedup against the (1-eps)-fraction jammer.

E15 established that 1-to-1 channel hopping is energy-*neutral*: per-cell
accounting hands the adversary a ``C``-fold blocking bill but the
hop-corrected defender pays a ``sqrt(C)`` rate boost, and the two cancel.
The multichannel literature's speedup needs 1-to-*n* multiplicity, which
is what :class:`~repro.multichannel.protocols.CZBroadcast` supplies: with
all ``n`` nodes informed the protocol keeps ~1 expected sender *per
channel*, so every extra channel is an independent chance to spread.

Against that protocol the canonical strong adversary is the
**(1-eps)-fraction jammer** (:class:`~repro.multichannel.adversaries
.FractionJammer`): she keeps a ``1-eps`` fraction of every (channel,
slot) grid jammed, the densest schedule that still leaves the protocol a
sliver to finish through.  Her per-slot bill is ``(1-eps) * C`` cells, so
at a *fixed* battery ``T`` she sustains it for only ``T / ((1-eps) C)``
slots — ``C``-fold fewer.  The measured consequence, checked here:

* at ``C = 1`` her battery outlives the protocol, which pays the full
  jammed bill to thread the ``eps``-sliver;
* for large ``C`` her battery dies early (spend hits ``T`` exactly) and
  the protocol finishes near its unjammed cost;
* per-node cost stays inside the resource-competitive envelope
  ``K * (sqrt(lam * T / C) + unjammed(C))`` at every ``C``, and for
  ``C >= 4`` beats both the ``C = 1`` run and the Theorem 1
  single-channel pairwise baseline at the same budget.

The spectrum-speedup curve ``cost(1) / cost(C)`` is rendered as a bar
chart — the headline figure of the multichannel extension.
"""

from __future__ import annotations

import numpy as np

from repro.adversaries import BudgetCap, RandomJammer
from repro.analysis.asciiplot import bar_chart
from repro.experiments.registry import ExperimentReport, RunConfig
from repro.experiments.runner import Table, mc_replicate, replicate
from repro.multichannel import (
    ChannelBandJammer,
    CZBroadcast,
    CZParams,
    FractionJammer,
)
from repro.protocols.one_to_one import OneToOneBroadcast, OneToOneParams

#: Envelope constant for the resource-competitive check.  Measured K at
#: the shipped seeds sits in [1.5, 2.2] across C; 3.0 leaves seed slack
#: without admitting a linear-in-T regression (which would blow past it
#: at the full-mode budget).
ENVELOPE_K = 3.0

#: The jammer's clear sliver.  Small eps makes C = 1 expensive (the
#: protocol threads a 5% window) while barely changing the big-C
#: picture, sharpening the contrast the theorem predicts.
EPS = 0.05

N_NODES = 16


def _mc_point(C, T, n_reps, seed, cfg):
    """Mean (cost, adversary spend, slots, success) for one (C, T) cell."""
    res = mc_replicate(
        lambda: CZBroadcast(CZParams.sim(n_nodes=N_NODES, n_channels=C)),
        lambda: FractionJammer(EPS, max_total=T),
        n_reps, seed, n_channels=C, max_slots=2_000_000, config=cfg,
    )
    return (
        float(np.mean([r.max_node_cost for r in res])),
        float(np.mean([r.adversary_cost for r in res])),
        float(np.mean([r.slots for r in res])),
        float(np.mean([r.success for r in res])),
    )


def run(config: RunConfig | None = None) -> ExperimentReport:
    cfg = config if config is not None else RunConfig()
    seed, quick = cfg.seed, cfg.quick
    channel_counts = (1, 2, 4, 8) if quick else (1, 2, 4, 8, 16)
    n_reps = 6 if quick else 15
    T = 1000 if quick else 2000
    report = ExperimentReport(eid="E18", title="", anchor="")

    # Unjammed per-C floors: the same protocol against a zero-channel
    # band jammer (structurally silent), so the envelope's additive term
    # reflects what spreading over C channels costs with nobody jamming.
    unjammed = {}
    for C in channel_counts:
        res = mc_replicate(
            lambda C=C: CZBroadcast(CZParams.sim(n_nodes=N_NODES, n_channels=C)),
            lambda: ChannelBandJammer(0),
            n_reps, seed, n_channels=C, max_slots=2_000_000, config=cfg,
        )
        unjammed[C] = float(np.mean([r.max_node_cost for r in res]))

    table = Table(
        f"E18: CZ broadcast vs (1-eps)-fraction jammer, eps={EPS}, "
        f"budget T={T}, n={N_NODES} ({n_reps} reps/point)",
        ["C", "max_cost", "adv_spent", "slots", "success",
         "unjammed", "envelope"],
    )
    cost, spent, succ = {}, {}, {}
    for C in channel_counts:
        lam = CZParams.sim(n_nodes=N_NODES, n_channels=C).lam
        envelope = ENVELOPE_K * (float(np.sqrt(lam * T / C)) + unjammed[C])
        cost[C], spent[C], slots, succ[C] = _mc_point(C, T, n_reps, seed, cfg)
        table.add_row(C, cost[C], spent[C], slots, succ[C],
                      unjammed[C], envelope)
    report.tables.append(table)

    # Theorem 1 baseline: the paper's single-channel pairwise protocol
    # against a q-blocking jammer on the same battery.  This is what a
    # node pays for delivery with no spectrum at all.
    thm1_runs = replicate(
        lambda: OneToOneBroadcast(OneToOneParams.sim()),
        lambda: BudgetCap(RandomJammer(0.9), T),
        n_reps, seed, max_slots=2_000_000, config=cfg,
    )
    thm1_cost = float(np.mean([r.max_node_cost for r in thm1_runs]))
    report.notes.append(
        f"Theorem 1 single-channel baseline at the same budget: "
        f"max_cost {thm1_cost:.1f} "
        f"(success {float(np.mean([r.success for r in thm1_runs])):.2f})"
    )

    speedup = {C: cost[channel_counts[0]] / cost[C] for C in channel_counts}
    report.notes.append(
        "spectrum speedup cost(1)/cost(C):\n"
        + bar_chart(
            [f"C={C}" for C in channel_counts],
            [speedup[C] for C in channel_counts],
        )
    )

    envelope_ok = all(
        cost[C]
        <= ENVELOPE_K
        * (float(np.sqrt(CZParams.sim(n_nodes=N_NODES, n_channels=C).lam * T / C))
           + unjammed[C])
        for C in channel_counts
    )
    big = [C for C in channel_counts if C >= 4]
    report.checks["broadcast succeeds at every C"] = bool(
        all(succ[C] == 1.0 for C in channel_counts)
    )
    report.checks[
        f"cost within the resource-competitive envelope (K={ENVELOPE_K})"
    ] = bool(envelope_ok)
    report.checks["spectrum pays: C>=4 beats C=1 by >=1.2x"] = bool(
        all(speedup[C] >= 1.2 for C in big)
    )
    report.checks["C>=4 beats the Theorem 1 single-channel baseline"] = bool(
        all(cost[C] < thm1_cost for C in big)
    )
    # The mechanism itself: the fraction jammer's per-slot bill scales
    # with C, so at the largest C she burns the whole battery in a few
    # hundred slots and the protocol then finishes nearly unjammed —
    # her jammed-vs-unjammed overhead collapses relative to C = 1.
    C_lo, C_hi = channel_counts[0], channel_counts[-1]
    report.checks["a full battery buys the jammer little at large C"] = bool(
        spent[C_hi] == float(T)
        and cost[C_hi] / unjammed[C_hi]
        < 0.6 * (cost[C_lo] / unjammed[C_lo])
    )
    report.notes.append(
        "1-to-1 hopping was energy-neutral (E15); the speedup above is "
        "the 1-to-n multiplicity effect — ~1 expected sender per channel "
        "once informed — which makes the (1-eps)-fraction jammer's bill "
        "scale with C while the defenders' does not."
    )
    return report
