"""Tests for the persistent worker pool (spawn-once, task-queue mode).

The pool's contract is the process backend's contract plus reuse:
results in task order, bit-identical to serial, crashes recovered by
replacement — and worker processes stable across batches, which is the
whole point of the mode.  Everything here is skipped where ``os.fork``
is unavailable.
"""

from __future__ import annotations

import os
import threading

import numpy as np
import pytest

from repro.engine.closures import TaskNotPortable, dumps_task, loads_task
from repro.engine.executor import ExecutorStats, WorkerPool, run_tasks
from repro.errors import ExecutorError

pytestmark = pytest.mark.parallel

needs_fork = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="worker pool needs os.fork"
)


def square_tasks(n):
    return [lambda i=i: i * i for i in range(n)]


def array_tasks(n):
    # Arrays catch value-level drift a scalar equality would miss.
    def make(i):
        return lambda: np.random.default_rng(i).normal(size=8)
    return [make(i) for i in range(n)]


class TestClosureSerialization:
    def test_round_trip_plain_lambda(self):
        task = lambda: 42  # noqa: E731
        assert loads_task(dumps_task(task))() == 42

    def test_round_trip_closure_cells(self):
        base = np.arange(4)
        task = lambda: base * 3
        np.testing.assert_array_equal(loads_task(dumps_task(task))(), base * 3)

    def test_unportable_task_raises(self):
        lock = threading.Lock()
        task = lambda: lock.locked()  # noqa: E731
        with pytest.raises(TaskNotPortable):
            dumps_task(task)


@needs_fork
class TestPoolBackend:
    def test_results_in_order_and_backend_tag(self):
        with WorkerPool(2) as pool:
            stats = ExecutorStats()
            out = run_tasks(square_tasks(10), jobs=2, pool=pool, stats=stats)
        assert out == [i * i for i in range(10)]
        assert stats.backend == "pool"
        assert stats.workers == 2

    def test_pooled_matches_serial_bit_for_bit(self):
        serial = run_tasks(array_tasks(12))
        with WorkerPool(3) as pool:
            pooled = run_tasks(array_tasks(12), jobs=3, pool=pool)
        for a, b in zip(serial, pooled):
            assert a.tobytes() == b.tobytes()

    def test_workers_reused_across_batches(self):
        with WorkerPool(2) as pool:
            run_tasks(square_tasks(8), jobs=2, pool=pool)
            first = sorted(pool.worker_pids())
            for _ in range(3):
                run_tasks(square_tasks(8), jobs=2, pool=pool)
            assert sorted(pool.worker_pids()) == first
            assert pool.spawned_total == 2

    def test_crashed_worker_is_replaced_and_task_retried(self):
        # One poisoned task kills its worker once; the retry must land
        # on a replacement and the pool must end the batch at strength.
        flag = "/tmp/does-not-exist-marker"  # absent: crash the first time

        def poison():
            if not os.path.exists(flag):
                os._exit(17)
            return "ok"

        with WorkerPool(2) as pool:
            with pytest.raises(ExecutorError, match="crash"):
                run_tasks(
                    [poison] + square_tasks(4), jobs=2, pool=pool, retries=1
                )
            # the pool recovers for the next batch
            assert run_tasks(square_tasks(6), jobs=2, pool=pool) == [
                i * i for i in range(6)
            ]
            assert pool.alive_workers == 2
            assert pool.spawned_total > 2  # replacements were forked

    def test_unportable_tasks_fall_back_to_process_backend(self):
        lock = threading.Lock()

        def unportable(i):
            return lambda: (lock.locked(), i)[1]

        with WorkerPool(2) as pool:
            stats = ExecutorStats()
            out = run_tasks(
                [unportable(i) for i in range(6)],
                jobs=2, pool=pool, stats=stats,
            )
        assert out == list(range(6))
        assert stats.backend == "process"  # fell back, still parallel
        assert pool.spawned_total == 0  # the pool never had to spawn

    def test_closed_pool_falls_back(self):
        pool = WorkerPool(2)
        pool.close()
        stats = ExecutorStats()
        out = run_tasks(square_tasks(6), jobs=2, pool=pool, stats=stats)
        assert out == [i * i for i in range(6)]
        assert stats.backend == "process"

    def test_dead_worker_between_batches_is_replaced(self):
        with WorkerPool(2) as pool:
            run_tasks(square_tasks(4), jobs=2, pool=pool)
            victim = pool.worker_pids()[0]
            os.kill(victim, 9)
            # next batch must notice the corpse and refill
            assert run_tasks(square_tasks(8), jobs=2, pool=pool) == [
                i * i for i in range(8)
            ]
            assert pool.alive_workers == 2
            assert victim not in pool.worker_pids()


def emitting_tasks(n):
    # Tasks that write telemetry *from inside the worker process* — the
    # parent-side executor.task spans can't distinguish adoption from
    # inheritance, worker-emitted counters can.
    def make(i):
        def task():
            from repro.telemetry.sink import get_sink

            sink = get_sink()
            if sink is not None:
                sink.counter("test.pool.adopt", 1)
            return i
        return task
    return [make(i) for i in range(n)]


@needs_fork
class TestPooledTelemetry:
    def test_pool_workers_adopt_parent_sink(self, tmp_path):
        # Pool workers are forked before the session exists, so their
        # counters only appear if sink adoption (shipping (run_dir, t0)
        # with each chunk) works.
        from repro.telemetry import read_events, session

        with WorkerPool(2) as pool:
            run_tasks(square_tasks(2), jobs=2, pool=pool)  # pre-spawn
            with session(tmp_path) as sink:
                run_tasks(emitting_tasks(8), jobs=2, pool=pool)
                run_dir = sink.run_dir
        events = read_events(run_dir)
        counters = [
            e for e in events
            if e.get("ev") == "counter" and e.get("name") == "test.pool.adopt"
        ]
        assert len(counters) == 8
        worker_pids = {e["pid"] for e in counters}
        assert os.getpid() not in worker_pids  # emitted in the workers
        assert all(e["t"] >= 0 for e in counters)  # shared t0 lines up
        task_spans = [
            e for e in events
            if e.get("ev") == "span" and e.get("name") == "executor.task"
        ]
        assert len(task_spans) == 8  # parent-side accounting intact

    def test_no_session_no_spurious_events(self, tmp_path):
        # A pool that once had a sink must not keep writing after the
        # session ends (the None share-info must deactivate workers).
        from repro.telemetry import read_events, session

        with WorkerPool(2) as pool:
            with session(tmp_path) as sink:
                run_tasks(emitting_tasks(4), jobs=2, pool=pool)
                run_dir = sink.run_dir
            n_before = len(read_events(run_dir))
            run_tasks(emitting_tasks(4), jobs=2, pool=pool)
            assert len(read_events(run_dir)) == n_before


@needs_fork
class TestRunConfigIntegration:
    def test_experiment_bytes_identical_with_pool(self):
        from repro.experiments.registry import RunConfig, run_experiment
        from repro.store import report_to_bytes

        plain = report_to_bytes(run_experiment("E1", RunConfig(seed=3)))
        with WorkerPool(2) as pool:
            pooled = report_to_bytes(
                run_experiment("E1", RunConfig(seed=3, jobs=2, pool=pool))
            )
        assert plain == pooled
