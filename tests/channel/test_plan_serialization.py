"""JSON round-trip for SlotSet and JamPlan, including spoofing plans.

A serialized plan must be *behaviourally* identical, not just
field-equal: the replay test swaps every recorded plan of a spoofing
run for its JSON round-trip and re-verifies the whole trace against
both channel resolvers.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro.channel.events import JamPlan, TxKind
from repro.channel.intervals import SlotSet

pytestmark = pytest.mark.arena


def _slotsets_equal(a: SlotSet, b: SlotSet) -> bool:
    return np.array_equal(a.starts, b.starts) and np.array_equal(a.ends, b.ends)


def test_slotset_json_round_trip():
    for ss in (
        SlotSet.empty(),
        SlotSet(np.array([2, 10]), np.array([5, 14])),
        SlotSet(np.array([0]), np.array([1])),
    ):
        again = SlotSet.from_json(json.loads(json.dumps(ss.to_json())))
        assert _slotsets_equal(ss, again)
        assert again.starts.dtype == np.int64


def test_jamplan_json_round_trip_all_fields():
    plan = JamPlan(
        length=64,
        global_slots=SlotSet(np.array([0, 20]), np.array([4, 30])),
        targeted={
            1: SlotSet(np.array([40]), np.array([50])),
            3: SlotSet(np.array([55]), np.array([60])),
        },
        spoof_slots=np.array([5, 6, 31], dtype=np.int64),
        spoof_kinds=np.array(
            [TxKind.NACK.value, TxKind.NACK.value, TxKind.ACK.value],
            dtype=np.int8,
        ),
    )
    again = JamPlan.from_json(json.loads(json.dumps(plan.to_json())))
    assert again.length == plan.length
    assert _slotsets_equal(again.global_slots, plan.global_slots)
    assert sorted(again.targeted) == sorted(plan.targeted)
    for group, slots in plan.targeted.items():
        assert _slotsets_equal(again.targeted[group], slots)
    assert np.array_equal(again.spoof_slots, plan.spoof_slots)
    assert np.array_equal(again.spoof_kinds, plan.spoof_kinds)
    assert again.spoof_kinds.dtype == np.int8


def test_jamplan_round_trip_renormalizes_consistently():
    """from_json goes through __post_init__, so overlap cleanup is
    applied identically on both sides."""
    plan = JamPlan(
        length=32,
        global_slots=SlotSet(np.array([0]), np.array([16])),
        targeted={2: SlotSet(np.array([8]), np.array([24]))},
    )
    again = JamPlan.from_json(plan.to_json())
    # targeted slots already covered globally were subtracted once,
    # and survive the round-trip unchanged
    assert _slotsets_equal(again.targeted[2], plan.targeted[2])
    assert np.array_equal(again.jam_mask(2), plan.jam_mask(2))


@pytest.mark.parametrize("scenario", ["jam", "simulate"])
def test_spoofing_run_replays_after_plan_serialization(scenario):
    """Record a spoofing run, JSON-round-trip every plan, and audit the
    rebuilt trace against both resolvers."""
    from repro.adversaries import SpoofingAdversary
    from repro.engine.simulator import Simulator
    from repro.protocols import OneToOneBroadcast, OneToOneParams
    from repro.trace import TraceRecorder, verify_trace

    recorder = TraceRecorder()
    sim = Simulator(
        OneToOneBroadcast(OneToOneParams.sim()),
        SpoofingAdversary(scenario, budget=512),
        trace=recorder,
    )
    sim.run(3)
    assert recorder.phases, "run recorded no phases"
    spoofed = sum(len(t.plan.spoof_slots) for t in recorder.phases)
    if scenario == "simulate":
        assert spoofed > 0, "simulate scenario never spoofed"

    rebuilt = TraceRecorder()
    rebuilt.phases = [
        dataclasses.replace(
            t, plan=JamPlan.from_json(json.loads(json.dumps(t.plan.to_json())))
        )
        for t in recorder.phases
    ]
    assert verify_trace(rebuilt) == len(recorder.phases)
