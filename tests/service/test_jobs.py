"""Tests for the job model and manager: dedupe, execution, accounting.

The load-bearing test here is the ISSUE's acceptance property: N
identical concurrent submissions cost exactly one executed task set,
proven from the executor's own accounting (``ExecutorStats``) and the
cache's put counters rather than from the manager's say-so.
"""

from __future__ import annotations

import threading

import pytest

from repro.errors import ServiceError
from repro.experiments.registry import RunConfig, run_experiment
from repro.service import JobManager, JobSpec, JobState
from repro.store import report_to_bytes

pytestmark = pytest.mark.service


class TestJobSpec:
    def test_canonicalizes_experiment_id(self):
        assert JobSpec("e1").experiment == "E1"
        assert JobSpec("e1", seed=4).job_id == JobSpec("E1", seed=4).job_id

    def test_job_id_is_the_config_fingerprint(self):
        spec = JobSpec("E1", seed=11, quick=True)
        expected = RunConfig(
            seed=11, quick=True, experiment="E1"
        ).fingerprint()
        assert spec.job_id == expected

    def test_rejects_unknown_experiment(self):
        with pytest.raises(Exception, match="unknown experiment"):
            JobSpec("E99")

    def test_rejects_bad_types(self):
        with pytest.raises(ServiceError, match="seed"):
            JobSpec("E1", seed="7")
        with pytest.raises(ServiceError, match="seed"):
            JobSpec("E1", seed=True)  # bool is not an acceptable seed
        with pytest.raises(ServiceError, match="quick"):
            JobSpec("E1", quick="yes")

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ServiceError, match="unknown job spec field"):
            JobSpec.from_dict({"experiment": "E1", "jobs": 4})
        with pytest.raises(ServiceError, match="missing 'experiment'"):
            JobSpec.from_dict({"seed": 1})

    def test_round_trip(self):
        spec = JobSpec("E1", seed=3, quick=False)
        assert JobSpec.from_dict(spec.to_dict()) == spec


class TestJobManager:
    def test_executes_and_result_matches_direct_run(self, tmp_path):
        with JobManager(cache_dir=tmp_path / "cache") as mgr:
            record = mgr.submit(JobSpec("E1", seed=11))
            record = mgr.wait(record.job_id, timeout=120)
        assert record.state == JobState.COMPLETED
        reference = report_to_bytes(
            run_experiment("E1", RunConfig(seed=11, quick=True))
        )
        assert record.result_bytes == reference

    def test_concurrent_identical_submissions_execute_once(self, tmp_path):
        # The acceptance property: dedupe proven from ExecutorStats and
        # cache counters, not the manager's own bookkeeping.
        with JobManager(cache_dir=tmp_path / "cache") as mgr:
            spec = JobSpec("E1", seed=11)
            records = []

            def submit():
                records.append(mgr.submit(spec))

            threads = [threading.Thread(target=submit) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            record = mgr.wait(spec.job_id, timeout=120)

            assert len({id(r) for r in records}) == 1  # one shared record
            assert record.submissions == 8
            assert mgr.executed == 1
            assert mgr.deduped == 7
            # executor accounting: exactly one task set ran
            assert record.stats["tasks"] > 0
            assert record.stats["cache_misses"] == record.stats["tasks"]
            assert record.stats["cache_hits"] == 0
            # cache accounting: every cell was put exactly once
            disk = mgr.store.stats()
            assert disk.entries == record.stats["tasks"]
            assert disk.unique_keys == record.stats["tasks"]

    def test_warm_manager_over_same_cache_executes_zero_cells(self, tmp_path):
        # A *fresh* manager (new process, in spirit) over the same
        # cache directory must serve the whole job from cache.
        with JobManager(cache_dir=tmp_path / "cache") as mgr:
            cold = mgr.wait(mgr.submit(JobSpec("E1", seed=11)).job_id, 120)
        with JobManager(cache_dir=tmp_path / "cache") as mgr2:
            warm = mgr2.wait(mgr2.submit(JobSpec("E1", seed=11)).job_id, 120)
        assert warm.result_bytes == cold.result_bytes
        assert warm.stats["cache_hits"] == cold.stats["tasks"]
        assert warm.stats["cache_misses"] == 0
        assert warm.stats["backend"] == ""  # no executor batch went wide

    def test_different_specs_are_different_jobs(self, tmp_path):
        with JobManager(cache_dir=tmp_path / "cache") as mgr:
            a = mgr.submit(JobSpec("E1", seed=1))
            b = mgr.submit(JobSpec("E1", seed=2))
            assert a.job_id != b.job_id
            mgr.wait(a.job_id, 120)
            mgr.wait(b.job_id, 120)
            assert mgr.executed == 2
            assert mgr.deduped == 0

    def test_unknown_job_id(self, tmp_path):
        with JobManager(cache_dir=tmp_path / "cache") as mgr:
            with pytest.raises(ServiceError, match="unknown job id"):
                mgr.get("feedfacedeadbeef")

    def test_wait_timeout(self, tmp_path):
        with JobManager(cache_dir=tmp_path / "cache") as mgr:
            record = mgr.submit(JobSpec("E1", seed=11))
            with pytest.raises(ServiceError, match="did not finish"):
                mgr.wait(record.job_id, timeout=0.0)
            mgr.wait(record.job_id, timeout=120)

    def test_failed_job_records_error_and_retries_on_resubmit(
        self, tmp_path, monkeypatch
    ):
        import repro.service.jobs as jobs_mod

        calls = {"n": 0}
        real = jobs_mod.run_experiment

        def flaky(eid, cfg):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient worker loss")
            return real(eid, cfg)

        monkeypatch.setattr(jobs_mod, "run_experiment", flaky)
        with JobManager(cache_dir=tmp_path / "cache") as mgr:
            record = mgr.wait(mgr.submit(JobSpec("E1", seed=11)).job_id, 120)
            assert record.state == JobState.FAILED
            assert "transient worker loss" in record.error
            assert mgr.failed == 1
            # resubmitting a failed job re-enqueues it
            record = mgr.wait(mgr.submit(JobSpec("E1", seed=11)).job_id, 120)
            assert record.state == JobState.COMPLETED
            assert record.error is None
            assert record.submissions == 2

    def test_closed_manager_rejects_submissions(self, tmp_path):
        mgr = JobManager(cache_dir=tmp_path / "cache")
        mgr.close()
        with pytest.raises(ServiceError, match="closed"):
            mgr.submit(JobSpec("E1", seed=11))

    def test_per_job_telemetry_run_directory(self, tmp_path):
        from repro.telemetry import read_events

        with JobManager(
            cache_dir=tmp_path / "cache", telemetry_root=tmp_path / "tel"
        ) as mgr:
            record = mgr.wait(mgr.submit(JobSpec("E1", seed=11)).job_id, 120)
        assert record.telemetry_dir == str(tmp_path / "tel" / record.job_id)
        events = read_events(record.telemetry_dir)
        names = {e.get("name") for e in events}
        assert "run.start" in names and "run.end" in names
        assert any(e.get("name") == "executor.batch" for e in events)

    def test_counters_shape(self, tmp_path):
        with JobManager(cache_dir=tmp_path / "cache") as mgr:
            mgr.wait(mgr.submit(JobSpec("E1", seed=11)).job_id, 120)
            counters = mgr.counters()
        assert counters["submitted"] == 1
        assert counters["executed"] == 1
        assert counters["jobs_known"] == 1
        assert counters["cache"]["misses"] > 0
